//! `qbm` — run QoS scenarios from the command line.
//!
//! ```text
//! qbm run    <scenario.qbm | table1 | table2>   admission check + simulation
//! qbm report <scenario.qbm | table1 | table2>   delay/occupancy percentile report
//! qbm check  <scenario.qbm | table1 | table2>   admission check only
//! qbm plan   <scenario.qbm | table1 | table2> [k]   §4 hybrid plan (default k = 3)
//! qbm sweep  <scenario.qbm | table1 | table2>   utilization/loss over buffer sizes
//! qbm trace  <scenario.qbm | table1 | table2> [out.jsonl]   traced single-seed run
//! qbm trace-check <trace.jsonl>                 validate a trace's schema
//! ```
//!
//! Flags (anywhere on the line):
//! * `--threads N` — shard `run`/`sweep` replications across N workers
//!   (default `QBM_THREADS`, else one per core); results are identical
//!   for any N. With `--topology`, N is the fabric shard width (how
//!   many same-level links advance concurrently).
//! * `--topology tree|incast|subscriber-tree` — with `run`: instead of
//!   the single link, run a multi-link fabric and report per link.
//!   `tree`/`incast` are fixed small shapes carrying the scenario's
//!   flow mix (aggregation tree: 1 site → 2 APs → 6 subscribers;
//!   incast: 3 senders into 1 aggregator); `subscriber-tree` is the
//!   generated ISP hierarchy (sites → APs → heavy-tailed subscriber
//!   plans under the §4 hybrid at the core) sized by `--flows`.
//!   Byte-identical for any `--threads`.
//! * `--flows N` — subscriber count for `--topology subscriber-tree`
//!   (default 100; 10²–10⁶ supported).
//! * `--trace <path>` — also write a JSONL event trace of the first
//!   seed (schema: see DESIGN.md §9). Sim-time-stamped and
//!   byte-identical across thread counts.
//! * `--probe-interval <dur>` — with a trace: sample per-flow/aggregate
//!   occupancy and the sharing pools every `<dur>` of simulated time
//!   into `<path stem>.timeseries.csv` (e.g. `10ms`).
//! * `--sources spec|aimd` — source family for `run`/`report`/`sweep`:
//!   the scenario's open-loop model (default) or closed-loop AIMD
//!   windows paced at each flow's peak rate, reacting to the link's
//!   drop/departure feedback. With AIMD sources the simulation report
//!   appends per-flow window counters (final cwnd, loss events, RTO
//!   backoffs).
//! * `--profile` — print per-phase wall-clock timing and events/sec.
//! * `--stats sketch|exact|both` — percentile source for `report`
//!   (default `sketch`), and with `run`/`run --topology`: attach
//!   streaming quantile sketches and append the percentile block.
//!   With `--topology` it also attaches per-link temporal heatmaps
//!   ([`qbm_obs::HeatmapObserver`]) and renders delay/occupancy/drop
//!   sparklines per link. Per-flow sketches downgrade to
//!   aggregate-only above the `StatsConfig` flow-count guard (~4096;
//!   DESIGN.md §14), with a warning.

use qbm_cli::profile::Profiler;
use qbm_cli::report::{admission_report, percentile_report, simulation_report, StatsMode};
use qbm_cli::units::parse_duration;
use qbm_cli::Scenario;
use qbm_core::analysis::hybrid::{
    buffer_savings_eq17, hybrid_buffer_eq19, optimal_alphas, rate_assignment_eq16,
    single_fifo_buffer_eq13, Grouping,
};
use qbm_core::units::{ByteSize, Dur, Rate};
use qbm_obs::{verify_trace, CountingObserver, TimeSeriesProbe, Tracer};
use qbm_sim::{MultiRun, SourceSel};

/// Options shared by the subcommands, parsed from anywhere on the line.
struct Options {
    threads: usize,
    trace: Option<String>,
    probe_interval: Option<Dur>,
    profile: bool,
    topology: Option<String>,
    flows: Option<usize>,
    stats: Option<StatsMode>,
    sources: Option<SourceSel>,
}

impl Options {
    /// Sketch parameters implied by `--stats` (none for `exact`/absent).
    fn sketch_params(&self) -> Option<qbm_sim::SketchParams> {
        self.stats
            .filter(|m| *m != StatsMode::Exact)
            .map(|_| qbm_sim::SketchParams::default())
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (opts, args) = parse_flags(&raw);
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => usage(),
    };
    let Some(target) = rest.first() else {
        usage();
    };
    if cmd == "trace-check" {
        trace_check(target);
        return;
    }
    let mut prof = Profiler::start();
    let mut scenario = load(target);
    if let Some(sel) = opts.sources {
        scenario.sources = sel;
    }
    prof.phase("load");
    match cmd {
        "check" => print!("{}", admission_report(&scenario)),
        "run" if opts.topology.is_some() => {
            run_topology(&scenario, &opts);
        }
        "report" => {
            let mode = opts.stats.unwrap_or(StatsMode::Sketch);
            let mut cfg = scenario.to_config();
            cfg.stats.sketches = match mode {
                StatsMode::Exact => None,
                _ => Some(qbm_sim::SketchParams::default()),
            };
            let multi = cfg.run_many_threaded(1, scenario.seeds, opts.threads);
            prof.phase("simulate");
            print!("{}", percentile_report(&scenario, &multi, mode));
            if opts.profile {
                println!();
                print!("{}", prof.finish(sim_events(&multi)).render());
            }
        }
        "run" => {
            print!("{}", admission_report(&scenario));
            println!();
            prof.phase("admission");
            let mut cfg = scenario.to_config();
            cfg.stats.sketches = opts.sketch_params();
            let multi = cfg.run_many_threaded(1, scenario.seeds, opts.threads);
            prof.phase("simulate");
            print!("{}", simulation_report(&scenario, &multi));
            if let Some(mode) = opts.stats {
                println!();
                print!("{}", percentile_report(&scenario, &multi, mode));
            }
            let mut events = sim_events(&multi);
            if let Some(path) = &opts.trace {
                events += traced_run(&scenario, path, opts.probe_interval);
                prof.phase("trace");
            }
            if opts.profile {
                println!();
                print!("{}", prof.finish(events).render());
            }
        }
        "trace" => {
            let default_out = "trace.jsonl".to_string();
            let out = opts
                .trace
                .as_ref()
                .or_else(|| rest.get(1))
                .unwrap_or(&default_out);
            let events = traced_run(&scenario, out, opts.probe_interval);
            prof.phase("trace");
            if opts.profile {
                print!("{}", prof.finish(events).render());
            }
        }
        "sweep" => sweep(&scenario, opts.threads),
        "plan" => {
            let k: usize = rest
                .get(1)
                .and_then(|a| a.parse().ok())
                .unwrap_or(3)
                .clamp(1, scenario.flows.len());
            plan(&scenario, k);
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage();
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  qbm run    <scenario.qbm|table1|table2> [--threads N] [--sources spec|aimd] [--stats sketch|exact|both] [--trace out.jsonl] [--probe-interval 10ms] [--profile]\n  qbm run    <scenario.qbm|table1|table2> --topology tree|incast|subscriber-tree [--flows N] [--threads N] [--stats sketch|exact|both] [--trace out.jsonl]\n  qbm report <scenario.qbm|table1|table2> [--threads N] [--stats sketch|exact|both]\n  qbm check  <scenario.qbm|table1|table2>\n  qbm plan   <scenario.qbm|table1|table2> [k]\n  qbm sweep  <scenario.qbm|table1|table2> [--threads N]\n  qbm trace  <scenario.qbm|table1|table2> [out.jsonl] [--probe-interval 10ms]\n  qbm trace-check <trace.jsonl>"
    );
    std::process::exit(2)
}

/// Extract the flags from `args` and return the remaining positional
/// arguments. `--threads` falls back to the `QBM_THREADS` environment
/// variable (0 = one worker per core).
fn parse_flags(args: &[String]) -> (Options, Vec<String>) {
    let mut opts = Options {
        threads: std::env::var("QBM_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0),
        trace: None,
        probe_interval: None,
        profile: false,
        topology: None,
        flows: None,
        stats: None,
        sources: None,
    };
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => opts.threads = t,
                None => flag_error("--threads needs a numeric argument"),
            },
            "--trace" => match it.next() {
                Some(p) => opts.trace = Some(p.clone()),
                None => flag_error("--trace needs an output path"),
            },
            "--probe-interval" => match it.next().map(|v| parse_duration(v)) {
                Some(Ok(d)) if !d.is_zero() => opts.probe_interval = Some(d),
                _ => flag_error("--probe-interval needs a nonzero duration (e.g. 10ms)"),
            },
            "--profile" => opts.profile = true,
            "--topology" => match it.next() {
                Some(t) if t == "tree" || t == "incast" || t == "subscriber-tree" => {
                    opts.topology = Some(t.clone())
                }
                _ => flag_error("--topology needs `tree`, `incast` or `subscriber-tree`"),
            },
            "--flows" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => opts.flows = Some(n),
                _ => flag_error("--flows needs a positive subscriber count"),
            },
            "--sources" => match it.next().map(String::as_str) {
                Some("spec") => opts.sources = Some(SourceSel::Spec),
                Some("aimd") => opts.sources = Some(SourceSel::Aimd),
                _ => flag_error("--sources needs `spec` or `aimd`"),
            },
            "--stats" => match it.next().map(String::as_str) {
                Some("sketch") => opts.stats = Some(StatsMode::Sketch),
                Some("exact") => opts.stats = Some(StatsMode::Exact),
                Some("both") => opts.stats = Some(StatsMode::Both),
                _ => flag_error("--stats needs `sketch`, `exact` or `both`"),
            },
            _ => rest.push(arg.clone()),
        }
    }
    (opts, rest)
}

fn flag_error(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

/// Events processed across all replications (arrivals + departures;
/// drops are part of arrivals).
fn sim_events(multi: &MultiRun) -> u64 {
    multi
        .runs
        .iter()
        .flat_map(|r| r.flows.iter())
        .map(|f| f.offered_pkts + f.delivered_pkts)
        .sum()
}

/// Re-run the scenario's first seed with a tracer (and optionally a
/// time-series probe) attached, and write the artifacts. Returns the
/// number of hook events observed.
fn traced_run(s: &Scenario, trace_path: &str, probe_interval: Option<Dur>) -> u64 {
    // Seed 1 = the first replication of `run`'s protocol
    // (`run_many_threaded(1, …)` uses seeds 1..=seeds).
    let seed = 1;
    // A disabled probe's first tick sits at u64::MAX ns — never reached.
    let interval = probe_interval.unwrap_or(Dur(u64::MAX));
    // Closed-loop runs capture `fb` records (schema v2); open-loop
    // traces keep their exact v1 bytes.
    let tracer = if s.sources == SourceSel::Aimd {
        Tracer::default().with_feedback()
    } else {
        Tracer::default()
    };
    let mut obs = (
        tracer,
        (
            TimeSeriesProbe::new(interval).with_per_flow(),
            CountingObserver::default(),
        ),
    );
    let _ = s.to_config().run_once_with(seed, &mut obs);
    let (tracer, (probe, counter)) = obs;
    write_or_die(trace_path, &tracer.to_jsonl());
    println!(
        "trace: {trace_path} ({} records, {} truncated, seed {seed})",
        tracer.len(),
        tracer.truncated()
    );
    if probe_interval.is_some() {
        let csv_path = format!("{}.timeseries.csv", trace_path.trim_end_matches(".jsonl"));
        write_or_die(&csv_path, &probe.to_csv());
        println!("probe: {csv_path} ({} samples)", probe.samples().len());
        if probe.truncated() {
            eprintln!(
                "warning: probe buffer full — dropped {} samples past the cap; \
                 widen --probe-interval to cover the horizon",
                probe.dropped()
            );
        }
    }
    counter.counts.total()
}

/// Run the scenario's flow mix through a multi-link fabric and report
/// per link. The shapes are fixed small topologies (see the module
/// docs); every origin link carries one seeded copy of the mix, so the
/// fabric scales the paper's single-link experiment out to several
/// multiplexing points. Results are byte-identical for any
/// `--threads` value.
fn run_topology(s: &Scenario, opts: &Options) {
    use qbm_cli::report::{fmt_bytes, fmt_ns, heatmap_sparkline};
    use qbm_obs::{HeatmapObserver, HeatmapParams};
    use qbm_sim::scenarios::{
        aggregation_tree, incast_fanin, subscriber_tree, LinkProfile, SubscriberTreeShape,
    };
    let seed = 1;
    let sketching = opts.sketch_params().is_some();
    let profile = LinkProfile {
        buffer_bytes: s.buffer_bytes,
        sched: s.sched.clone(),
        policy: qbm_sim::PolicySpec::Kind(s.policy),
        stats: qbm_sim::StatsConfig {
            sketches: opts.sketch_params(),
            ..qbm_sim::StatsConfig::default()
        },
    };
    let kind = opts.topology.as_deref().unwrap_or("tree");
    // How many leading links get their own report row — subscriber
    // trees summarize their AP relays in one aggregate row.
    let mut detail_links = usize::MAX;
    let (fabric, labels): (_, Vec<String>) = match kind {
        "tree" => {
            let (aps, subs) = (2usize, 3usize);
            // Upstream links sized to carry their fan-out losslessly:
            // the per-subscriber experiment happens at the subscriber
            // links.
            let rates = [
                Rate::from_bps(s.link.bps() * (aps * subs) as u64),
                Rate::from_bps(s.link.bps() * subs as u64),
                s.link,
            ];
            let mut labels = vec!["site".to_string()];
            labels.extend((0..aps).map(|a| format!("ap{a}")));
            labels.extend((0..aps * subs).map(|d| format!("sub{d}")));
            (
                aggregation_tree(aps, subs, &s.flows, rates, &profile, seed),
                labels,
            )
        }
        "subscriber-tree" => {
            let shape = SubscriberTreeShape::for_flows(opts.flows.unwrap_or(100));
            if profile.stats.per_flow_downgraded(shape.flows()) {
                eprintln!(
                    "warning: {} flows exceed the per-flow sketch limit ({}); \
                     downgrading to aggregate-only sketches (DESIGN.md §14)",
                    shape.flows(),
                    profile.stats.per_flow_sketch_limit
                );
            }
            detail_links = 1 + shape.sites;
            let mut labels = vec!["core".to_string()];
            labels.extend((0..shape.sites).map(|i| format!("site{i}")));
            for site in 0..shape.sites {
                for a in 0..shape.aps_per_site {
                    labels.push(format!("s{site}ap{a}"));
                }
            }
            (subscriber_tree(shape, &profile, seed), labels)
        }
        _ => {
            let senders = 3usize;
            let mut labels: Vec<String> = (0..senders).map(|i| format!("sender{i}")).collect();
            labels.push("aggregator".to_string());
            (
                incast_fanin(senders, &s.flows, s.link, s.link, &profile, seed),
                labels,
            )
        }
    };
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        opts.threads
    };
    let warmup = qbm_core::units::Time::ZERO + s.warmup;
    let end = warmup + s.duration;

    // Four observer shapes: tracing and heatmapping attach per link
    // through `run_observed` and both merge byte-identically at any
    // shard width.
    let n_links = fabric.n_links();
    let print_trace = |tracers: &[Tracer], path: &str| {
        write_or_die(path, &Tracer::merged_links_jsonl(tracers));
        let records: usize = tracers.iter().map(Tracer::len).sum();
        println!(
            "trace: {path} ({records} records across {} links, seed {seed})\n",
            tracers.len()
        );
    };
    let (res, heatmaps): (_, Option<Vec<HeatmapObserver>>) = match (&opts.trace, sketching) {
        (Some(path), true) => {
            let mut obs: Vec<(Tracer, HeatmapObserver)> = (0..n_links)
                .map(|_| {
                    (
                        Tracer::default().with_link_dim(),
                        HeatmapObserver::new(HeatmapParams::default()),
                    )
                })
                .collect();
            let res = fabric.run_observed(seed, warmup, end, threads, &mut obs);
            let (tracers, heat): (Vec<_>, Vec<_>) = obs.into_iter().unzip();
            print_trace(&tracers, path);
            (res, Some(heat))
        }
        (Some(path), false) => {
            let mut tracers = vec![Tracer::default().with_link_dim(); n_links];
            let res = fabric.run_observed(seed, warmup, end, threads, &mut tracers);
            print_trace(&tracers, path);
            (res, None)
        }
        (None, true) => {
            let mut heat: Vec<HeatmapObserver> = (0..n_links)
                .map(|_| HeatmapObserver::new(HeatmapParams::default()))
                .collect();
            let res = fabric.run_observed(seed, warmup, end, threads, &mut heat);
            (res, Some(heat))
        }
        (None, false) => (fabric.run(seed, warmup, end, threads), None),
    };

    println!(
        "{kind} fabric: {} links, {threads} shard threads\n",
        res.len()
    );
    println!(
        "{:>12} {:>7} {:>10} {:>10} {:>9}{}",
        "link",
        "flows",
        "Mb/s",
        "drops",
        "loss%",
        if sketching {
            format!(" {:>10} {:>10}", "p50 delay", "p99 delay")
        } else {
            String::new()
        }
    );
    let row_stats = |r: &qbm_sim::SimResult| {
        let thr: f64 = (0..r.flows.len())
            .map(|f| r.flow_throughput_bps(qbm_core::flow::FlowId(f as u32)))
            .sum::<f64>()
            / 1e6;
        let offered: u64 = r.flows.iter().map(|f| f.offered_pkts).sum();
        let dropped: u64 = r.flows.iter().map(|f| f.dropped_pkts).sum();
        (r.flows.len(), thr, offered, dropped)
    };
    for (i, r) in res.iter().enumerate().take(detail_links) {
        let (flows, thr, offered, dropped) = row_stats(r);
        let percentiles = match r.delay_sketch.as_ref() {
            Some(d) if sketching => format!(
                " {:>10} {:>10}",
                format!("{:.3}ms", d.quantile(0.50) as f64 / 1e6),
                format!("{:.3}ms", d.quantile(0.99) as f64 / 1e6),
            ),
            _ => String::new(),
        };
        println!(
            "{:>12} {:>7} {:>10.2} {:>10} {:>9.3}{percentiles}",
            labels[i],
            flows,
            thr,
            dropped,
            100.0 * dropped as f64 / offered.max(1) as f64
        );
    }
    if detail_links < res.len() {
        // One aggregate row for the AP relay tier.
        let (mut flows, mut thr, mut offered, mut dropped) = (0usize, 0f64, 0u64, 0u64);
        for r in &res[detail_links..] {
            let (f, t, o, d) = row_stats(r);
            flows += f;
            thr += t;
            offered += o;
            dropped += d;
        }
        println!(
            "{:>12} {:>7} {:>10.2} {:>10} {:>9.3}",
            format!("aps×{}", res.len() - detail_links),
            flows,
            thr,
            dropped,
            100.0 * dropped as f64 / offered.max(1) as f64
        );
    }

    if let Some(heat) = &heatmaps {
        let shown = detail_links.min(heat.len());
        type Pick = for<'a> fn(&'a HeatmapObserver) -> &'a qbm_obs::TemporalHeatmap;
        for (title, pick, q, fmt) in [
            (
                "delay heatmap (p99 sojourn per slot, tier 0)",
                (|h| &h.delay) as Pick,
                0.99,
                fmt_ns as fn(u64) -> String,
            ),
            (
                "occupancy heatmap (p99 buffer bytes per slot, tier 0)",
                |h: &HeatmapObserver| &h.occupancy,
                0.99,
                fmt_bytes,
            ),
            (
                "drop heatmap (p99 dropped-packet bytes per slot, tier 0)",
                |h: &HeatmapObserver| &h.drops,
                0.99,
                fmt_bytes,
            ),
        ] {
            let rows: Vec<(usize, String)> = heat
                .iter()
                .take(shown)
                .enumerate()
                .filter_map(|(i, h)| heatmap_sparkline(pick(h), q, fmt).map(|l| (i, l)))
                .collect();
            if rows.is_empty() {
                continue;
            }
            println!("\n{title}:");
            for (i, line) in rows {
                println!("{:>12}  {line}", labels[i]);
            }
        }
    }
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write `{path}`: {e}");
        std::process::exit(1);
    }
}

/// Validate a trace file against the JSONL schema; exit 1 on failure
/// (the CI gate).
fn trace_check(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read `{path}`: {e}");
        std::process::exit(1);
    });
    match verify_trace(&text) {
        Ok(sum) => {
            println!(
                "{path}: ok — {} records (arr {} | enq {} | drop {} | dep {} | thr {} | share {} | fb {} | cells {}), {} truncated",
                sum.records,
                sum.arrivals,
                sum.enqueues,
                sum.drops,
                sum.departures,
                sum.crossings,
                sum.sharing,
                sum.feedback,
                sum.cells,
                sum.truncated
            );
        }
        Err(e) => {
            eprintln!("{path}: schema check FAILED — {e}");
            std::process::exit(1);
        }
    }
}

/// Sweep the buffer from half to 4x the scenario's size: the fastest
/// way to see where the configuration sits on the paper's
/// buffer/utilization trade-off curve.
fn sweep(s: &Scenario, threads: usize) {
    use qbm_core::flow::Conformance;
    println!(
        "{:>12} {:>10} {:>12} {:>12}",
        "buffer", "util %", "conf loss %", "agg Mb/s"
    );
    for mult in [0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0] {
        let mut cfg = s.to_config();
        cfg.buffer_bytes = (s.buffer_bytes as f64 * mult).round() as u64;
        let multi = cfg.run_many_threaded(1, s.seeds, threads);
        let util = multi.summarize(|r| r.aggregate_throughput_bps() / s.link.bps() as f64 * 100.0);
        let loss =
            multi.summarize(|r| r.class_loss_ratio(&s.flows, Conformance::Conformant) * 100.0);
        let agg = multi.summarize(|r| r.aggregate_throughput_bps() / 1e6);
        println!(
            "{:>12} {:>10.2} {:>12.3} {:>12.2}",
            format!("{}", ByteSize::from_bytes(cfg.buffer_bytes)),
            util.mean,
            loss.mean,
            agg.mean
        );
    }
}

fn load(target: &str) -> Scenario {
    match target {
        // Built-in paper workloads on the paper's link.
        "table1" | "table2" => {
            let flows = if target == "table1" {
                qbm_traffic::table1()
            } else {
                qbm_traffic::table2()
            };
            Scenario {
                link: Rate::from_mbps(48.0),
                buffer_bytes: ByteSize::from_mib(1).bytes(),
                sched: qbm_sched::SchedKind::Fifo,
                policy: qbm_core::policy::PolicyKind::Threshold,
                duration: Dur::from_secs(22),
                warmup: Dur::from_secs(2),
                seeds: 5,
                sources: SourceSel::Spec,
                flows,
            }
        }
        path => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read `{path}`: {e}");
                std::process::exit(2);
            });
            Scenario::parse(&text).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            })
        }
    }
}

fn plan(s: &Scenario, k: usize) {
    let r = s.link.bps() as f64;
    let grouping = Grouping::optimize_contiguous(&s.flows, k);
    let groups = grouping.profiles(&s.flows);
    let alphas = optimal_alphas(&groups);
    let rho: f64 = groups.iter().map(|g| g.rho_bps).sum();
    if rho >= r {
        eprintln!("mix oversubscribes the link (Σρ ≥ R) — no feasible plan");
        std::process::exit(1);
    }
    let rates = rate_assignment_eq16(r, &groups, &alphas);
    let sigma: f64 = groups.iter().map(|g| g.sigma_bytes).sum();
    println!(
        "hybrid plan, k = {k} (σ/ρ-sorted DP grouping over {} flows)\n",
        s.flows.len()
    );
    println!(
        "{:>6} {:>7} {:>8} {:>11} {:>11}",
        "queue", "flows", "alpha", "rho Mb/s", "R_i Mb/s"
    );
    for (q, g) in groups.iter().enumerate() {
        println!(
            "{:>6} {:>7} {:>8.4} {:>11.2} {:>11.2}",
            q,
            g.n_flows,
            alphas[q],
            g.rho_bps / 1e6,
            rates[q] / 1e6
        );
    }
    println!(
        "\nB_single-FIFO = {} | B_hybrid = {} | saved = {} (Eq. 17)",
        ByteSize::from_bytes(single_fifo_buffer_eq13(r, sigma, rho).ceil() as u64),
        ByteSize::from_bytes(hybrid_buffer_eq19(r, &groups).ceil() as u64),
        ByteSize::from_bytes(buffer_savings_eq17(r, &groups).round() as u64),
    );
    println!("queue membership: {:?}", grouping.members());
}
