//! `qbm` — run QoS scenarios from the command line.
//!
//! ```text
//! qbm run   <scenario.qbm | table1 | table2>   admission check + simulation
//! qbm check <scenario.qbm | table1 | table2>   admission check only
//! qbm plan  <scenario.qbm | table1 | table2> [k]   §4 hybrid plan (default k = 3)
//! qbm sweep <scenario.qbm | table1 | table2>   utilization/loss over buffer sizes
//! ```
//!
//! `--threads N` (anywhere on the line) shards the replications of
//! `run` and `sweep` across N worker threads; results are identical
//! for any N (default: one per core).

use qbm_cli::report::{admission_report, simulation_report};
use qbm_cli::Scenario;
use qbm_core::analysis::hybrid::{
    buffer_savings_eq17, hybrid_buffer_eq19, optimal_alphas, rate_assignment_eq16,
    single_fifo_buffer_eq13, Grouping,
};
use qbm_core::units::{ByteSize, Dur, Rate};

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (threads, args) = split_threads_flag(&raw);
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => usage(),
    };
    let Some(target) = rest.first() else {
        usage();
    };
    let scenario = load(target);
    match cmd {
        "check" => print!("{}", admission_report(&scenario)),
        "run" => {
            print!("{}", admission_report(&scenario));
            println!();
            let multi = scenario
                .to_config()
                .run_many_threaded(1, scenario.seeds, threads);
            print!("{}", simulation_report(&scenario, &multi));
        }
        "sweep" => sweep(&scenario, threads),
        "plan" => {
            let k: usize = rest
                .get(1)
                .and_then(|a| a.parse().ok())
                .unwrap_or(3)
                .clamp(1, scenario.flows.len());
            plan(&scenario, k);
        }
        other => {
            eprintln!("unknown command `{other}`");
            usage();
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  qbm run   <scenario.qbm|table1|table2> [--threads N]\n  qbm check <scenario.qbm|table1|table2>\n  qbm plan  <scenario.qbm|table1|table2> [k]\n  qbm sweep <scenario.qbm|table1|table2> [--threads N]"
    );
    std::process::exit(2)
}

/// Extract `--threads N` (0 = one worker per core when absent) and
/// return the remaining positional arguments.
fn split_threads_flag(args: &[String]) -> (usize, Vec<String>) {
    let mut threads = 0;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threads" {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(t) => threads = t,
                None => {
                    eprintln!("--threads needs a numeric argument");
                    std::process::exit(2);
                }
            }
        } else {
            rest.push(arg.clone());
        }
    }
    (threads, rest)
}

/// Sweep the buffer from half to 4x the scenario's size: the fastest
/// way to see where the configuration sits on the paper's
/// buffer/utilization trade-off curve.
fn sweep(s: &Scenario, threads: usize) {
    use qbm_core::flow::Conformance;
    println!(
        "{:>12} {:>10} {:>12} {:>12}",
        "buffer", "util %", "conf loss %", "agg Mb/s"
    );
    for mult in [0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0] {
        let mut cfg = s.to_config();
        cfg.buffer_bytes = (s.buffer_bytes as f64 * mult).round() as u64;
        let multi = cfg.run_many_threaded(1, s.seeds, threads);
        let util = multi.summarize(|r| r.aggregate_throughput_bps() / s.link.bps() as f64 * 100.0);
        let loss =
            multi.summarize(|r| r.class_loss_ratio(&s.flows, Conformance::Conformant) * 100.0);
        let agg = multi.summarize(|r| r.aggregate_throughput_bps() / 1e6);
        println!(
            "{:>12} {:>10.2} {:>12.3} {:>12.2}",
            format!("{}", ByteSize::from_bytes(cfg.buffer_bytes)),
            util.mean,
            loss.mean,
            agg.mean
        );
    }
}

fn load(target: &str) -> Scenario {
    match target {
        // Built-in paper workloads on the paper's link.
        "table1" | "table2" => {
            let flows = if target == "table1" {
                qbm_traffic::table1()
            } else {
                qbm_traffic::table2()
            };
            Scenario {
                link: Rate::from_mbps(48.0),
                buffer_bytes: ByteSize::from_mib(1).bytes(),
                sched: qbm_sched::SchedKind::Fifo,
                policy: qbm_core::policy::PolicyKind::Threshold,
                duration: Dur::from_secs(22),
                warmup: Dur::from_secs(2),
                seeds: 5,
                flows,
            }
        }
        path => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read `{path}`: {e}");
                std::process::exit(2);
            });
            Scenario::parse(&text).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            })
        }
    }
}

fn plan(s: &Scenario, k: usize) {
    let r = s.link.bps() as f64;
    let grouping = Grouping::optimize_contiguous(&s.flows, k);
    let groups = grouping.profiles(&s.flows);
    let alphas = optimal_alphas(&groups);
    let rho: f64 = groups.iter().map(|g| g.rho_bps).sum();
    if rho >= r {
        eprintln!("mix oversubscribes the link (Σρ ≥ R) — no feasible plan");
        std::process::exit(1);
    }
    let rates = rate_assignment_eq16(r, &groups, &alphas);
    let sigma: f64 = groups.iter().map(|g| g.sigma_bytes).sum();
    println!(
        "hybrid plan, k = {k} (σ/ρ-sorted DP grouping over {} flows)\n",
        s.flows.len()
    );
    println!(
        "{:>6} {:>7} {:>8} {:>11} {:>11}",
        "queue", "flows", "alpha", "rho Mb/s", "R_i Mb/s"
    );
    for (q, g) in groups.iter().enumerate() {
        println!(
            "{:>6} {:>7} {:>8.4} {:>11.2} {:>11.2}",
            q,
            g.n_flows,
            alphas[q],
            g.rho_bps / 1e6,
            rates[q] / 1e6
        );
    }
    println!(
        "\nB_single-FIFO = {} | B_hybrid = {} | saved = {} (Eq. 17)",
        ByteSize::from_bytes(single_fifo_buffer_eq13(r, sigma, rho).ceil() as u64),
        ByteSize::from_bytes(hybrid_buffer_eq19(r, &groups).ceil() as u64),
        ByteSize::from_bytes(buffer_savings_eq17(r, &groups).round() as u64),
    );
    println!("queue membership: {:?}", grouping.members());
}
