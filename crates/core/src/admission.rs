//! Admission control and schedulability regions — the paper's §2.3.
//!
//! A set of `(σᵢ, ρᵢ)` flows is schedulable on a link of rate `R` with a
//! buffer of `B` bytes:
//!
//! * under **WFQ** with a fully partitioned buffer iff
//!   `R ≥ Σρᵢ` (Eq. 5) and `B ≥ Σσᵢ` (Eq. 6);
//! * under **FIFO + thresholds** iff
//!   `R ≥ Σρᵢ` (Eq. 7) and `B ≥ R·Σσᵢ/(R − Σρᵢ)` (Eq. 9),
//!   equivalently `B ≥ Σσᵢ/(1 − u)` with `u = Σρᵢ/R` (Eq. 10).
//!
//! A rejected request is classified **bandwidth-limited** when the rate
//! constraint fails and **buffer-limited** when only the buffer
//! constraint fails — the distinction the paper draws right after
//! Eq. (6).

use crate::error::ConfigError;
use crate::flow::FlowSpec;
use crate::units::Rate;

/// The output link a flow set is admitted onto.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Link service rate `R`.
    pub rate: Rate,
    /// Total buffer `B`, bytes.
    pub buffer_bytes: u64,
}

impl LinkConfig {
    /// A link of `rate` with `buffer_bytes` of packet memory.
    pub fn new(rate: Rate, buffer_bytes: u64) -> LinkConfig {
        LinkConfig { rate, buffer_bytes }
    }

    /// Validate the configuration (positive rate, non-trivial buffer).
    pub fn validate(&self, max_packet_bytes: u64) -> Result<(), ConfigError> {
        if self.rate.bps() == 0 {
            return Err(ConfigError::ZeroLinkRate);
        }
        if self.buffer_bytes < max_packet_bytes {
            return Err(ConfigError::BufferTooSmall {
                capacity: self.buffer_bytes,
                needed: max_packet_bytes,
            });
        }
        Ok(())
    }
}

/// Which discipline's schedulability region to test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Discipline {
    /// Per-flow WFQ with fully partitioned buffers (Eqs. 5–6).
    Wfq,
    /// Single FIFO with threshold buffer management (Eqs. 7–9).
    FifoThreshold,
}

/// Result of an admission test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdmissionOutcome {
    /// Both constraints met.
    Accepted,
    /// Rate constraint violated: the link is *bandwidth limited*.
    RejectedBandwidth,
    /// Buffer constraint violated: the link is *buffer limited*.
    RejectedBuffer,
}

impl AdmissionOutcome {
    /// True iff the flow set was accepted.
    pub fn accepted(self) -> bool {
        self == AdmissionOutcome::Accepted
    }
}

/// Sum of reserved rates Σρᵢ in b/s (as f64 to avoid overflow concerns
/// in pathological synthetic configurations).
fn total_rho_bps(specs: &[FlowSpec]) -> f64 {
    specs.iter().map(|s| s.token_rate.bps() as f64).sum()
}

/// Sum of burst sizes Σσᵢ in bytes.
fn total_sigma_bytes(specs: &[FlowSpec]) -> f64 {
    specs.iter().map(|s| s.bucket_bytes as f64).sum()
}

/// Minimum buffer (bytes) for lossless FIFO+threshold operation —
/// Eq. (9): `B ≥ R·Σσ / (R − Σρ)`. Returns `f64::INFINITY` when
/// `Σρ ≥ R`.
pub fn fifo_required_buffer(link_rate: Rate, specs: &[FlowSpec]) -> f64 {
    let r = link_rate.bps() as f64;
    let rho = total_rho_bps(specs);
    let sigma = total_sigma_bytes(specs);
    if rho >= r {
        return f64::INFINITY;
    }
    r * sigma / (r - rho)
}

/// Minimum buffer (bytes) for lossless per-flow WFQ — Eq. (6): `Σσᵢ`.
pub fn wfq_required_buffer(specs: &[FlowSpec]) -> f64 {
    total_sigma_bytes(specs)
}

/// Eq. (10) as a curve: buffer needed per byte of total burst at
/// reserved utilization `u ∈ [0, 1)`; `1/(1−u)`, the buffer-inflation
/// factor of FIFO relative to WFQ.
pub fn buffer_inflation(u: f64) -> f64 {
    assert!((0.0..1.0).contains(&u), "utilization must be in [0,1): {u}");
    1.0 / (1.0 - u)
}

/// One-shot schedulability test for a whole flow set.
pub fn admissible(
    link: LinkConfig,
    discipline: Discipline,
    specs: &[FlowSpec],
) -> AdmissionOutcome {
    let r = link.rate.bps() as f64;
    if total_rho_bps(specs) > r {
        return AdmissionOutcome::RejectedBandwidth;
    }
    let needed = match discipline {
        Discipline::Wfq => wfq_required_buffer(specs),
        Discipline::FifoThreshold => fifo_required_buffer(link.rate, specs),
    };
    if (link.buffer_bytes as f64) < needed {
        AdmissionOutcome::RejectedBuffer
    } else {
        AdmissionOutcome::Accepted
    }
}

/// Incremental admission controller: flows arrive one at a time and are
/// accepted or rejected against the running totals — what a signalling
/// plane (e.g. RSVP) would invoke per reservation request.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    link: LinkConfig,
    discipline: Discipline,
    accepted: Vec<FlowSpec>,
    sum_rho_bps: f64,
    sum_sigma_bytes: f64,
}

impl AdmissionController {
    /// An empty controller for `link` under `discipline`.
    pub fn new(link: LinkConfig, discipline: Discipline) -> AdmissionController {
        AdmissionController {
            link,
            discipline,
            accepted: Vec::new(),
            sum_rho_bps: 0.0,
            sum_sigma_bytes: 0.0,
        }
    }

    /// Test `spec` against the region *including* everything already
    /// accepted; accept and record it if it fits.
    pub fn try_admit(&mut self, spec: FlowSpec) -> AdmissionOutcome {
        let r = self.link.rate.bps() as f64;
        let rho = self.sum_rho_bps + spec.token_rate.bps() as f64;
        let sigma = self.sum_sigma_bytes + spec.bucket_bytes as f64;
        if rho > r {
            return AdmissionOutcome::RejectedBandwidth;
        }
        let needed = match self.discipline {
            Discipline::Wfq => sigma,
            Discipline::FifoThreshold => {
                if rho >= r {
                    f64::INFINITY
                } else {
                    r * sigma / (r - rho)
                }
            }
        };
        if (self.link.buffer_bytes as f64) < needed {
            return AdmissionOutcome::RejectedBuffer;
        }
        self.sum_rho_bps = rho;
        self.sum_sigma_bytes = sigma;
        self.accepted.push(spec);
        AdmissionOutcome::Accepted
    }

    /// Flows accepted so far.
    pub fn accepted(&self) -> &[FlowSpec] {
        &self.accepted
    }

    /// Current reserved utilization `u = Σρᵢ/R`.
    pub fn utilization(&self) -> f64 {
        self.sum_rho_bps / self.link.rate.bps() as f64
    }

    /// Remaining lossless buffer slack in bytes (how much of `B` is not
    /// yet needed by the accepted set).
    pub fn buffer_slack_bytes(&self) -> f64 {
        let needed = match self.discipline {
            Discipline::Wfq => self.sum_sigma_bytes,
            Discipline::FifoThreshold => {
                let r = self.link.rate.bps() as f64;
                if self.sum_rho_bps >= r {
                    f64::INFINITY
                } else {
                    r * self.sum_sigma_bytes / (r - self.sum_rho_bps)
                }
            }
        };
        self.link.buffer_bytes as f64 - needed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowId;
    use crate::units::ByteSize;

    fn spec(i: u32, rho_mbps: f64, bucket_kib: u64) -> FlowSpec {
        FlowSpec::builder(FlowId(i))
            .token_rate(Rate::from_mbps(rho_mbps))
            .bucket(ByteSize::from_kib(bucket_kib).bytes())
            .build()
    }

    const LINK_RATE: Rate = Rate::from_bps(48_000_000);

    #[test]
    fn eq9_matches_hand_computation() {
        // Σσ = 150 KiB, Σρ = 24 Mb/s on 48 Mb/s: B ≥ 48/(48−24)·Σσ = 2Σσ.
        let specs = [spec(0, 16.0, 100), spec(1, 8.0, 50)];
        let need = fifo_required_buffer(LINK_RATE, &specs);
        let sigma = ByteSize::from_kib(150).bytes() as f64;
        assert!((need - 2.0 * sigma).abs() < 1e-6);
        assert_eq!(wfq_required_buffer(&specs), sigma);
    }

    #[test]
    fn eq9_diverges_at_full_utilization() {
        let specs = [spec(0, 48.0, 10)];
        assert!(fifo_required_buffer(LINK_RATE, &specs).is_infinite());
    }

    #[test]
    fn inflation_factor_curve() {
        assert_eq!(buffer_inflation(0.0), 1.0);
        assert!((buffer_inflation(0.5) - 2.0).abs() < 1e-12);
        assert!((buffer_inflation(0.9) - 10.0).abs() < 1e-9);
        // Monotone increasing.
        let mut prev = 0.0;
        for i in 0..100 {
            let v = buffer_inflation(i as f64 / 100.0);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn inflation_rejects_u_of_one() {
        let _ = buffer_inflation(1.0);
    }

    #[test]
    fn fifo_needs_more_buffer_than_wfq() {
        // The same flow set accepted by WFQ can be buffer-limited on FIFO.
        let specs = [spec(0, 20.0, 200), spec(1, 20.0, 200)];
        let sigma = ByteSize::from_kib(400).bytes();
        // Buffer exactly Σσ: WFQ accepts, FIFO (u = 40/48) needs 6×.
        let link = LinkConfig::new(LINK_RATE, sigma);
        assert_eq!(
            admissible(link, Discipline::Wfq, &specs),
            AdmissionOutcome::Accepted
        );
        assert_eq!(
            admissible(link, Discipline::FifoThreshold, &specs),
            AdmissionOutcome::RejectedBuffer
        );
        let link6 = LinkConfig::new(LINK_RATE, sigma * 6);
        assert_eq!(
            admissible(link6, Discipline::FifoThreshold, &specs),
            AdmissionOutcome::Accepted
        );
    }

    #[test]
    fn bandwidth_limit_reported_before_buffer_limit() {
        let specs = [spec(0, 30.0, 10), spec(1, 30.0, 10)];
        let link = LinkConfig::new(LINK_RATE, 1); // tiny buffer too
        assert_eq!(
            admissible(link, Discipline::FifoThreshold, &specs),
            AdmissionOutcome::RejectedBandwidth
        );
    }

    #[test]
    fn incremental_controller_matches_batch_test() {
        let link = LinkConfig::new(LINK_RATE, ByteSize::from_mib(1).bytes());
        let mut ctl = AdmissionController::new(link, Discipline::FifoThreshold);
        let mut batch = Vec::new();
        let mut i = 0;
        // Admit identical flows until rejection; the batch test must
        // agree at every prefix.
        loop {
            let s = spec(i, 4.0, 60);
            let inc = ctl.try_admit(s);
            let mut trial = batch.clone();
            trial.push(s);
            let all = admissible(link, Discipline::FifoThreshold, &trial);
            assert_eq!(inc, all, "divergence at flow {i}");
            if !inc.accepted() {
                break;
            }
            batch.push(s);
            i += 1;
            assert!(i < 100, "runaway");
        }
        assert!(!ctl.accepted().is_empty());
        assert!(ctl.utilization() < 1.0);
    }

    #[test]
    fn controller_rejections_do_not_mutate_state() {
        let link = LinkConfig::new(LINK_RATE, ByteSize::from_kib(100).bytes());
        let mut ctl = AdmissionController::new(link, Discipline::Wfq);
        assert!(ctl.try_admit(spec(0, 2.0, 50)).accepted());
        let u = ctl.utilization();
        let slack = ctl.buffer_slack_bytes();
        // This one is buffer-limited (Σσ = 150 KiB > 100 KiB).
        assert_eq!(
            ctl.try_admit(spec(1, 2.0, 100)),
            AdmissionOutcome::RejectedBuffer
        );
        assert_eq!(ctl.accepted().len(), 1);
        assert_eq!(ctl.utilization(), u);
        assert_eq!(ctl.buffer_slack_bytes(), slack);
    }

    #[test]
    fn table1_reserved_utilization_is_68_percent() {
        // §3.2: "the aggregate reserved rate is 32.8 Mb/s, or about 68%
        // of the link capacity".
        let rates = [2.0, 2.0, 2.0, 8.0, 8.0, 8.0, 0.4, 0.4, 2.0];
        let specs: Vec<FlowSpec> = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| spec(i as u32, r, 50))
            .collect();
        let sum: f64 = rates.iter().sum();
        assert!((sum - 32.8).abs() < 1e-9);
        let link = LinkConfig::new(LINK_RATE, ByteSize::from_mib(5).bytes());
        let mut ctl = AdmissionController::new(link, Discipline::FifoThreshold);
        for s in &specs {
            assert!(ctl.try_admit(*s).accepted());
        }
        assert!((ctl.utilization() - 32.8 / 48.0).abs() < 1e-9);
    }

    #[test]
    fn link_config_validation() {
        assert_eq!(
            LinkConfig::new(Rate::ZERO, 1000).validate(500),
            Err(ConfigError::ZeroLinkRate)
        );
        assert_eq!(
            LinkConfig::new(LINK_RATE, 100).validate(500),
            Err(ConfigError::BufferTooSmall {
                capacity: 100,
                needed: 500
            })
        );
        assert!(LinkConfig::new(LINK_RATE, 1000).validate(500).is_ok());
    }
}
