//! `(σ, ρ [, P])` arrival envelopes — the paper's Eq. (2).
//!
//! An envelope bounds a flow's cumulative arrivals:
//! `A(t) − A(s) ≤ min(σ + ρ·(t−s), P·(t−s))` for all `s ≤ t`
//! (the peak term only when a peak rate `P` is declared).
//!
//! [`Envelope`] is the *declarative* form used by admission control and
//! the analysis module; [`crate::token_bucket::TokenBucket`] is the
//! matching run-time state machine.

use crate::units::{Dur, Rate};

/// A leaky-bucket traffic envelope with optional peak-rate cap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Envelope {
    /// Burst size σ, bytes.
    pub sigma_bytes: u64,
    /// Token (sustained) rate ρ.
    pub rho: Rate,
    /// Optional peak rate `P ≥ ρ`.
    pub peak: Option<Rate>,
}

impl Envelope {
    /// A pure `(σ, ρ)` envelope with no peak-rate cap.
    pub fn new(sigma_bytes: u64, rho: Rate) -> Envelope {
        Envelope {
            sigma_bytes,
            rho,
            peak: None,
        }
    }

    /// A `(σ, ρ)` envelope additionally capped at peak rate `p`.
    ///
    /// Panics if `p < ρ` — such an envelope can never emit its tokens.
    pub fn with_peak(sigma_bytes: u64, rho: Rate, p: Rate) -> Envelope {
        assert!(p >= rho, "peak rate {p} below token rate {rho}");
        Envelope {
            sigma_bytes,
            rho,
            peak: Some(p),
        }
    }

    /// Maximum bytes the flow may emit in any window of length `dt`
    /// (fractional — the fluid bound of Eq. 2).
    pub fn max_bytes_in(&self, dt: Dur) -> f64 {
        let secs = dt.as_secs_f64();
        let bucket = self.sigma_bytes as f64 + self.rho.bytes_per_sec() * secs;
        match self.peak {
            Some(p) => bucket.min(p.bytes_per_sec() * secs),
            None => bucket,
        }
    }

    /// Does a cumulative arrival trace `(time, bytes-so-far)` conform?
    ///
    /// Checks Eq. (2) over every pair of sample points; intended for
    /// tests and offline trace validation, not the hot path. Sample
    /// points must be sorted by time with non-decreasing cumulative
    /// bytes. A small `slack_bytes` absorbs packetization (the fluid
    /// bound is exceeded by at most one packet when arrivals are
    /// instantaneous packets).
    pub fn trace_conforms(&self, trace: &[(Dur, u64)], slack_bytes: u64) -> bool {
        for (i, &(t_i, a_i)) in trace.iter().enumerate() {
            for &(t_j, a_j) in &trace[..=i] {
                debug_assert!(t_j <= t_i && a_j <= a_i, "trace not sorted");
                let win = t_i - t_j;
                let bound = self.max_bytes_in(win) + slack_bytes as f64;
                if (a_i - a_j) as f64 > bound + 1e-9 {
                    return false;
                }
            }
        }
        true
    }

    /// The *maximum backlog* this flow alone can build in an initially
    /// empty queue drained at `service` — `σ·(1 − ρ/P)⁻¹`-free version:
    /// with no peak cap the worst case is the instantaneous burst σ;
    /// with a peak cap `P > service` the backlog grows at `P − service`
    /// until the bucket empties.
    pub fn max_backlog_bytes(&self, service: Rate) -> f64 {
        if self.rho >= service {
            return f64::INFINITY;
        }
        match self.peak {
            None => self.sigma_bytes as f64,
            Some(p) if p <= service => 0.0,
            Some(p) => {
                // Burst duration until tokens exhaust: σ / (P − ρ);
                // backlog grows at (P − service) during it.
                let p_bps = p.bytes_per_sec();
                let rho_bps = self.rho.bytes_per_sec();
                let svc_bps = service.bytes_per_sec();
                let burst_dur = self.sigma_bytes as f64 / (p_bps - rho_bps);
                (p_bps - svc_bps) * burst_dur
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Time;

    #[test]
    fn max_bytes_combines_bucket_and_peak() {
        // 50 KB bucket, 2 Mb/s token rate, 16 Mb/s peak (Table 1 flow 0).
        let e = Envelope::with_peak(51_200, Rate::from_mbps(2.0), Rate::from_mbps(16.0));
        // At t=0+: peak line wins (0), not the bucket (51_200).
        assert_eq!(e.max_bytes_in(Dur::ZERO), 0.0);
        // Long window: bucket line wins.
        let long = e.max_bytes_in(Dur::from_secs(10));
        assert!((long - (51_200.0 + 250_000.0 * 10.0)).abs() < 1e-6);
        // Crossover: peak line = bucket line at σ/(P−ρ) = 51200/1750000 s.
        let tc = 51_200.0 / (2_000_000.0 - 250_000.0);
        let at_cross = e.max_bytes_in(Dur::from_secs_f64(tc));
        assert!((at_cross - 2_000_000.0 * tc).abs() < 1.0);
    }

    #[test]
    fn no_peak_allows_instant_burst() {
        let e = Envelope::new(1000, Rate::from_mbps(1.0));
        assert_eq!(e.max_bytes_in(Dur::ZERO), 1000.0);
    }

    #[test]
    #[should_panic(expected = "peak rate")]
    fn peak_below_token_rate_rejected() {
        let _ = Envelope::with_peak(1000, Rate::from_mbps(2.0), Rate::from_mbps(1.0));
    }

    #[test]
    fn conforming_trace_accepted_and_violation_caught() {
        let e = Envelope::new(1000, Rate::from_bps(8000)); // 1000 B/s
                                                           // 1000 B burst at t=0, then 1000 B/s.
        let good: Vec<(Dur, u64)> = (0..10)
            .map(|s| (Dur::from_secs(s), 1000 + 1000 * s))
            .collect();
        assert!(e.trace_conforms(&good, 0));
        // Same but a 2000 B spike in one second: violates.
        let mut bad = good.clone();
        bad[5].1 += 1500;
        for p in bad.iter_mut().skip(6) {
            p.1 += 1500;
        }
        assert!(!e.trace_conforms(&bad, 0));
        // ... unless within declared slack.
        assert!(e.trace_conforms(&bad, 1500));
    }

    #[test]
    fn max_backlog_cases() {
        let svc = Rate::from_mbps(10.0);
        // No peak: backlog is the burst.
        assert_eq!(
            Envelope::new(5000, Rate::from_mbps(1.0)).max_backlog_bytes(svc),
            5000.0
        );
        // Peak below service: no backlog ever.
        assert_eq!(
            Envelope::with_peak(5000, Rate::from_mbps(1.0), Rate::from_mbps(8.0))
                .max_backlog_bytes(svc),
            0.0
        );
        // Token rate >= service: unbounded.
        assert!(Envelope::new(1, Rate::from_mbps(10.0))
            .max_backlog_bytes(svc)
            .is_infinite());
        // Peak above service: (P−R)·σ/(P−ρ).
        let e = Envelope::with_peak(8000, Rate::from_mbps(2.0), Rate::from_mbps(16.0));
        let expect = (2_000_000.0 - 1_250_000.0) * 8000.0 / (2_000_000.0 - 250_000.0);
        assert!((e.max_backlog_bytes(svc) - expect).abs() < 1e-6);
    }

    #[test]
    fn envelope_matches_token_bucket_emissions() {
        // A greedy source shaped by the equivalent TokenBucket must
        // produce a trace that conforms to the Envelope.
        use crate::token_bucket::TokenBucket;
        let e = Envelope::new(2000, Rate::from_bps(80_000)); // 10 KB/s
        let mut tb = TokenBucket::new(2000, Rate::from_bps(80_000));
        let mut now = Time::ZERO;
        let mut cum = 0u64;
        let mut trace = vec![(Dur::ZERO, 0u64)];
        for _ in 0..200 {
            let wait = tb.time_until_conformant(now, 500).unwrap();
            now += wait;
            tb.consume(now, 500);
            cum += 500;
            trace.push((now.since(Time::ZERO), cum));
        }
        // Packetization slack: one packet.
        assert!(e.trace_conforms(&trace, 500));
    }
}
