//! Flow identities and traffic specifications.
//!
//! A [`FlowSpec`] carries the four columns of the paper's Table 1 /
//! Table 2 — peak rate, average rate, token-bucket size, token rate —
//! plus the conformance class the paper assigns to each flow and the §5
//! "adaptive" marker used by the future-work sharing variant.

use crate::envelope::Envelope;
use crate::units::Rate;

/// Dense flow index. Flows in a configuration are numbered `0..N`
/// exactly like the rows of the paper's tables; policies use the index
/// directly into per-flow state vectors, keeping every admission
/// decision a constant-time array access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The array index for per-flow state vectors.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for FlowId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// How a flow's actual traffic relates to its declared profile — the
/// three behaviours the paper evaluates (§3.2 and §4.2 / Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Conformance {
    /// Shaped by a leaky-bucket regulator; never exceeds the profile
    /// (Table 1 flows 0–5, Table 2 flows 0–9).
    #[default]
    Conformant,
    /// Mean rate and burst match the profile but the unshaped ON-OFF
    /// process may transiently exceed it (Table 2 flows 10–19).
    ModeratelyNonConformant,
    /// Sustained traffic far above the reservation (Table 1 flows 6–8,
    /// Table 2 flows 20–29).
    Aggressive,
}

impl Conformance {
    /// Flows the paper's "loss for conformant flows" figures track.
    pub fn is_conformant(self) -> bool {
        matches!(self, Conformance::Conformant)
    }
}

/// Full traffic specification for one flow — one row of Table 1/2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Flow index (row number).
    pub id: FlowId,
    /// Source peak rate while ON.
    pub peak: Rate,
    /// Source long-run average rate.
    pub avg: Rate,
    /// Declared token-bucket size σ, bytes.
    pub bucket_bytes: u64,
    /// Declared/reserved token rate ρ (the rate guarantee; also the WFQ
    /// weight, per §3.2).
    pub token_rate: Rate,
    /// Mean burst size of the underlying ON-OFF source, bytes. For
    /// conformant flows this equals `bucket_bytes`; the paper makes
    /// flows 6–8 burst 5× their bucket and Table 2's aggressive flows
    /// burst 500 KBytes.
    pub mean_burst_bytes: u64,
    /// Behaviour class.
    pub class: Conformance,
    /// §5 future-work marker: adaptive flows may borrow shared buffer
    /// space under [`crate::policy::AdaptiveSharing`].
    pub adaptive: bool,
}

impl FlowSpec {
    /// Start building a spec for `id`. Unset fields default to zero /
    /// [`Conformance::Conformant`] / non-adaptive; [`SpecBuilder::build`]
    /// validates the combination.
    pub fn builder(id: FlowId) -> SpecBuilder {
        SpecBuilder {
            spec: FlowSpec {
                id,
                peak: Rate::ZERO,
                avg: Rate::ZERO,
                bucket_bytes: 0,
                token_rate: Rate::ZERO,
                mean_burst_bytes: 0,
                class: Conformance::Conformant,
                adaptive: false,
            },
        }
    }

    /// The declared `(σ, ρ, P)` envelope used for thresholds and
    /// admission control.
    pub fn envelope(&self) -> Envelope {
        if self.peak >= self.token_rate && self.peak > Rate::ZERO {
            Envelope::with_peak(self.bucket_bytes, self.token_rate, self.peak)
        } else {
            Envelope::new(self.bucket_bytes, self.token_rate)
        }
    }

    /// Offered load relative to the reservation (`avg / token_rate`);
    /// > 1 means the flow offers excess traffic.
    pub fn overload_factor(&self) -> f64 {
        if self.token_rate.bps() == 0 {
            return f64::INFINITY;
        }
        self.avg.bps() as f64 / self.token_rate.bps() as f64
    }
}

/// Builder for [`FlowSpec`]; see [`FlowSpec::builder`].
#[derive(Debug, Clone)]
pub struct SpecBuilder {
    spec: FlowSpec,
}

impl SpecBuilder {
    /// Source peak rate.
    pub fn peak(mut self, r: Rate) -> Self {
        self.spec.peak = r;
        self
    }

    /// Source average rate.
    pub fn avg(mut self, r: Rate) -> Self {
        self.spec.avg = r;
        self
    }

    /// Declared token-bucket size in bytes.
    pub fn bucket(mut self, bytes: u64) -> Self {
        self.spec.bucket_bytes = bytes;
        self
    }

    /// Declared token (reserved) rate.
    pub fn token_rate(mut self, r: Rate) -> Self {
        self.spec.token_rate = r;
        self
    }

    /// Mean ON-burst size in bytes (defaults to the bucket size).
    pub fn mean_burst(mut self, bytes: u64) -> Self {
        self.spec.mean_burst_bytes = bytes;
        self
    }

    /// Behaviour class.
    pub fn class(mut self, c: Conformance) -> Self {
        self.spec.class = c;
        self
    }

    /// Mark the flow adaptive for §5-style sharing policies.
    pub fn adaptive(mut self, yes: bool) -> Self {
        self.spec.adaptive = yes;
        self
    }

    /// Finish, applying defaults and sanity checks:
    /// * `mean_burst` defaults to the bucket size;
    /// * `avg` defaults to the token rate;
    /// * peak (when set) must be ≥ both rates.
    pub fn build(mut self) -> FlowSpec {
        if self.spec.mean_burst_bytes == 0 {
            self.spec.mean_burst_bytes = self.spec.bucket_bytes;
        }
        if self.spec.avg == Rate::ZERO {
            self.spec.avg = self.spec.token_rate;
        }
        if self.spec.peak > Rate::ZERO {
            assert!(
                self.spec.peak >= self.spec.avg,
                "{}: peak {} below average {}",
                self.spec.id,
                self.spec.peak,
                self.spec.avg
            );
        }
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_flow0() -> FlowSpec {
        FlowSpec::builder(FlowId(0))
            .peak(Rate::from_mbps(16.0))
            .avg(Rate::from_mbps(2.0))
            .bucket(51_200)
            .token_rate(Rate::from_mbps(2.0))
            .build()
    }

    #[test]
    fn builder_defaults() {
        let s = table1_flow0();
        assert_eq!(s.mean_burst_bytes, 51_200); // defaults to bucket
        assert_eq!(s.class, Conformance::Conformant);
        assert!(!s.adaptive);
        assert!((s.overload_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn avg_defaults_to_token_rate() {
        let s = FlowSpec::builder(FlowId(3))
            .token_rate(Rate::from_mbps(8.0))
            .bucket(1000)
            .build();
        assert_eq!(s.avg, Rate::from_mbps(8.0));
    }

    #[test]
    fn aggressive_flow_overload() {
        // Table 1 flow 8: avg 16 Mb/s on a 2 Mb/s reservation.
        let s = FlowSpec::builder(FlowId(8))
            .peak(Rate::from_mbps(40.0))
            .avg(Rate::from_mbps(16.0))
            .bucket(51_200)
            .token_rate(Rate::from_mbps(2.0))
            .mean_burst(5 * 51_200)
            .class(Conformance::Aggressive)
            .build();
        assert!((s.overload_factor() - 8.0).abs() < 1e-12);
        assert!(!s.class.is_conformant());
    }

    #[test]
    fn envelope_includes_peak_when_sensible() {
        let s = table1_flow0();
        assert!(s.envelope().peak.is_some());
        // Token rate above "peak 0" -> pure (σ, ρ) envelope.
        let s2 = FlowSpec::builder(FlowId(1))
            .token_rate(Rate::from_mbps(2.0))
            .bucket(100)
            .build();
        assert!(s2.envelope().peak.is_none());
    }

    #[test]
    #[should_panic(expected = "peak")]
    fn peak_below_average_rejected() {
        let _ = FlowSpec::builder(FlowId(0))
            .peak(Rate::from_mbps(1.0))
            .avg(Rate::from_mbps(2.0))
            .token_rate(Rate::from_mbps(1.0))
            .build();
    }

    #[test]
    fn flow_id_display_and_index() {
        assert_eq!(format!("{}", FlowId(7)), "flow7");
        assert_eq!(FlowId(7).index(), 7);
    }
}
