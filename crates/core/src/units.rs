//! Exact time / rate / size arithmetic.
//!
//! The simulator clock is an integer nanosecond counter. All conversions
//! between (bytes, rate) and time go through `u128` intermediates with
//! round-to-nearest, so repeated transmissions never accumulate floating
//! point drift and every run is bit-for-bit reproducible.
//!
//! Conventions (documented in DESIGN.md §7):
//! * time — nanoseconds, `u64` (≈ 584 years of range);
//! * rate — bits per second, `u64`;
//! * size — bytes, `u64`; 1 KByte = 1024 B, 1 MByte = 2²⁰ B.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds in one second.
pub const NS_PER_SEC: u64 = 1_000_000_000;

/// An absolute simulation time, in nanoseconds since the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

/// A transmission or reservation rate, in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Rate(u64);

/// A byte count with binary-unit constructors (KiB = 1024 B).
///
/// The paper's "KBytes"/"MBytes" are interpreted as binary units; the
/// 2.4 % decimal/binary difference does not affect any reported shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ByteSize(u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);
    /// The largest representable time; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * NS_PER_SEC)
    }

    /// Construct from (possibly fractional) seconds, rounding to the
    /// nearest nanosecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Time {
        assert!(s.is_finite() && s >= 0.0, "invalid time: {s}");
        Time((s * NS_PER_SEC as f64).round() as u64)
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NS_PER_SEC as f64
    }

    /// Nanoseconds since the origin.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`. Panics (in debug) if `earlier`
    /// is in the future — the event loop only moves forward.
    pub fn since(self, earlier: Time) -> Dur {
        debug_assert!(earlier <= self, "time moved backwards: {earlier} > {self}");
        Dur(self.0 - earlier.0)
    }

    /// Saturating time advance (used for "infinitely far" sentinels).
    pub const fn saturating_add(self, d: Dur) -> Time {
        Time(self.0.saturating_add(d.0))
    }
}

impl Dur {
    /// The empty duration.
    pub const ZERO: Dur = Dur(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Dur {
        Dur(s * NS_PER_SEC)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Construct from (possibly fractional) seconds, rounding to the
    /// nearest nanosecond. Panics on negative or non-finite input.
    pub fn from_secs_f64(s: f64) -> Dur {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        Dur((s * NS_PER_SEC as f64).round() as u64)
    }

    /// This span expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NS_PER_SEC as f64
    }

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// True iff this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Rate {
    /// The zero rate (a stopped source).
    pub const ZERO: Rate = Rate(0);

    /// Construct from bits per second.
    pub const fn from_bps(bps: u64) -> Rate {
        Rate(bps)
    }

    /// Construct from megabits per second (decimal: 1 Mb/s = 10⁶ b/s),
    /// matching the paper's "Mbits/s" columns. Rounds to the nearest
    /// bit per second; panics on negative or non-finite input.
    pub fn from_mbps(mbps: f64) -> Rate {
        assert!(mbps.is_finite() && mbps >= 0.0, "invalid rate: {mbps}");
        Rate((mbps * 1e6).round() as u64)
    }

    /// Construct from kilobits per second (decimal).
    pub fn from_kbps(kbps: f64) -> Rate {
        assert!(kbps.is_finite() && kbps >= 0.0, "invalid rate: {kbps}");
        Rate((kbps * 1e3).round() as u64)
    }

    /// Bits per second.
    pub const fn bps(self) -> u64 {
        self.0
    }

    /// Megabits per second (decimal).
    pub fn mbps(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0 as f64 / 8.0
    }

    /// Time to transmit `bytes` at this rate, rounded to the nearest
    /// nanosecond. Panics if the rate is zero.
    ///
    /// Exact: `ns = round(bytes · 8 · 10⁹ / rate)` in `u128`.
    pub fn transmission_time(self, bytes: u64) -> Dur {
        assert!(self.0 > 0, "transmission over a zero-rate link");
        let num = (bytes as u128) * 8 * (NS_PER_SEC as u128);
        let den = self.0 as u128;
        Dur(((num + den / 2) / den) as u64)
    }

    /// Whole bits conveyed in `d` at this rate (rounded down).
    pub fn bits_in(self, d: Dur) -> u64 {
        ((self.0 as u128 * d.0 as u128) / NS_PER_SEC as u128) as u64
    }

    /// Time needed to accumulate `bits` at this rate (rounded up), or
    /// `None` if the rate is zero (never).
    pub fn time_to_send_bits(self, bits: u64) -> Option<Dur> {
        if self.0 == 0 {
            return None;
        }
        let num = bits as u128 * NS_PER_SEC as u128;
        let den = self.0 as u128;
        Some(Dur(num.div_ceil(den) as u64))
    }

    /// `self` as a fraction of `of` (e.g. a flow's share of the link).
    pub fn fraction_of(self, of: Rate) -> f64 {
        assert!(of.0 > 0, "fraction of a zero rate");
        self.0 as f64 / of.0 as f64
    }
}

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Construct from a raw byte count.
    pub const fn from_bytes(b: u64) -> ByteSize {
        ByteSize(b)
    }

    /// Construct from binary kilobytes (1 KiB = 1024 B).
    pub const fn from_kib(k: u64) -> ByteSize {
        ByteSize(k * 1024)
    }

    /// Construct from binary megabytes (1 MiB = 2²⁰ B).
    pub const fn from_mib(m: u64) -> ByteSize {
        ByteSize(m * 1024 * 1024)
    }

    /// Construct from fractional binary megabytes, rounding to a byte.
    pub fn from_mib_f64(m: f64) -> ByteSize {
        assert!(m.is_finite() && m >= 0.0, "invalid size: {m}");
        ByteSize((m * (1u64 << 20) as f64).round() as u64)
    }

    /// The raw byte count.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Bits in this many bytes.
    pub const fn bits(self) -> u64 {
        self.0 * 8
    }

    /// This size in binary kilobytes.
    pub fn kib(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// This size in binary megabytes.
    pub fn mib(self) -> f64 {
        self.0 as f64 / (1u64 << 20) as f64
    }
}

/// Tolerant float equality: `|a − b| ≤ eps`.
///
/// The workspace bans float `==`/`!=` outright (`qbm-lint`'s
/// `float-eq` rule): exact float equality next to the exact integer
/// arithmetic above is almost always a latent accounting bug. Use this
/// where a genuine sentinel must be tested (e.g. "a sum of
/// non-negative terms is zero"), with an explicitly chosen `eps`.
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, d: Dur) -> Time {
        Time(self.0.checked_add(d.0).expect("time overflow"))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, d: Dur) {
        *self = *self + d;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, d: Dur) -> Time {
        Time(self.0.checked_sub(d.0).expect("time underflow"))
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, o: Dur) -> Dur {
        Dur(self.0.checked_add(o.0).expect("duration overflow"))
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, o: Dur) {
        *self = *self + o;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, o: Dur) -> Dur {
        Dur(self.0.checked_sub(o.0).expect("duration underflow"))
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, o: Dur) {
        *self = *self - o;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, k: u64) -> Dur {
        Dur(self.0.checked_mul(k).expect("duration overflow"))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, k: u64) -> Dur {
        Dur(self.0 / k)
    }
}

impl Add for Rate {
    type Output = Rate;
    fn add(self, o: Rate) -> Rate {
        Rate(self.0.checked_add(o.0).expect("rate overflow"))
    }
}

impl Sub for Rate {
    type Output = Rate;
    fn sub(self, o: Rate) -> Rate {
        Rate(self.0.checked_sub(o.0).expect("rate underflow"))
    }
}

impl core::iter::Sum for Rate {
    fn sum<I: Iterator<Item = Rate>>(iter: I) -> Rate {
        iter.fold(Rate::ZERO, |a, b| a + b)
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, o: ByteSize) -> ByteSize {
        ByteSize(self.0.checked_add(o.0).expect("size overflow"))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= NS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bps = self.0;
        if bps >= 1_000_000 {
            write!(f, "{:.2}Mb/s", bps as f64 / 1e6)
        } else if bps >= 1_000 {
            write!(f, "{:.2}Kb/s", bps as f64 / 1e3)
        } else {
            write!(f, "{bps}b/s")
        }
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= (1 << 20) {
            write!(f, "{:.2}MiB", self.mib())
        } else if b >= 1024 {
            write!(f, "{:.2}KiB", self.kib())
        } else {
            write!(f, "{b}B")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmission_time_is_exact_for_paper_parameters() {
        // 500-byte packet on a 48 Mb/s link: 4000 bits / 48e6 b/s
        // = 83.333…µs -> 83333ns (round to nearest).
        let r = Rate::from_mbps(48.0);
        assert_eq!(r.transmission_time(500), Dur(83_333));
    }

    #[test]
    fn transmission_time_round_trips_with_bits_in() {
        for &rate in &[400_000u64, 2_000_000, 48_000_000, 2_400_000_000] {
            let r = Rate::from_bps(rate);
            for &bytes in &[1u64, 40, 500, 1500, 65_535] {
                let t = r.transmission_time(bytes);
                let bits = r.bits_in(t);
                // Round-to-nearest keeps us within one bit-time of exact.
                let err = bits as i128 - (bytes * 8) as i128;
                assert!(err.abs() <= 1, "rate {rate} bytes {bytes}: err {err}");
            }
        }
    }

    #[test]
    fn time_to_send_bits_is_inverse_of_bits_in() {
        let r = Rate::from_mbps(16.0);
        let d = r.time_to_send_bits(4000).unwrap();
        assert!(r.bits_in(d) >= 4000);
        // One nanosecond earlier must not be enough.
        assert!(r.bits_in(Dur(d.0 - 1)) < 4000);
    }

    #[test]
    fn zero_rate_never_sends() {
        assert_eq!(Rate::ZERO.time_to_send_bits(1), None);
    }

    #[test]
    #[should_panic(expected = "zero-rate")]
    fn transmission_on_zero_rate_panics() {
        let _ = Rate::ZERO.transmission_time(1);
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::from_secs(1);
        let t2 = t + Dur::from_millis(500);
        assert_eq!(t2.as_nanos(), 1_500_000_000);
        assert_eq!(t2.since(t), Dur::from_millis(500));
        assert_eq!(Time::MAX.saturating_add(Dur::from_secs(1)), Time::MAX);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn time_add_overflow_panics() {
        let _ = Time::MAX + Dur(1);
    }

    #[test]
    fn byte_size_units() {
        assert_eq!(ByteSize::from_kib(50).bytes(), 51_200);
        assert_eq!(ByteSize::from_mib(1).bytes(), 1_048_576);
        assert_eq!(ByteSize::from_mib_f64(0.5).bytes(), 524_288);
        assert_eq!(ByteSize::from_kib(2).bits(), 16_384);
    }

    #[test]
    fn rate_units_and_sum() {
        assert_eq!(Rate::from_mbps(48.0).bps(), 48_000_000);
        assert_eq!(Rate::from_kbps(400.0).bps(), 400_000);
        let total: Rate = [Rate::from_mbps(2.0), Rate::from_mbps(8.0)]
            .into_iter()
            .sum();
        assert_eq!(total.bps(), 10_000_000);
        assert!((Rate::from_mbps(12.0).fraction_of(Rate::from_mbps(48.0)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Rate::from_mbps(48.0)), "48.00Mb/s");
        assert_eq!(format!("{}", Dur::from_micros(83)), "83.000us");
        assert_eq!(format!("{}", ByteSize::from_mib(2)), "2.00MiB");
        assert_eq!(format!("{}", Dur(250)), "250ns");
        assert_eq!(format!("{}", Rate::from_bps(500)), "500b/s");
    }

    #[test]
    fn worst_case_delay_matches_paper_intro_claim() {
        // §1: "the worst case delay caused by a 1MByte buffer feeding an
        // OC-48 link (2.4 Gb/s) is less than 3.5 msec".
        let d = Rate::from_bps(2_400_000_000).transmission_time(ByteSize::from_mib(1).bytes());
        assert!(d < Dur::from_millis(3) + Dur::from_micros(500));
        assert!(d > Dur::from_millis(3));
    }
}
