//! §4: the hybrid architecture — `k` FIFO queues under a WFQ scheduler.
//!
//! Each queue `i` aggregates a group of flows with combined rate
//! `ρ̂ᵢ = Σρ` and burst `σ̂ᵢ = Σσ`, is served at rate `Rᵢ` by the
//! scheduler, and applies threshold buffer management internally. The
//! paper's results:
//!
//! * Eq. (11): queue `i` needs `Bᵢ = Rᵢ·σ̂ᵢ/(Rᵢ − ρ̂ᵢ)` (footnote 6: a
//!   single-flow queue needs only `σ̂ᵢ`);
//! * Prop. 3 / Eq. (14): splitting the excess `R − ρ` as
//!   `αᵢ ∝ √(σ̂ᵢρ̂ᵢ)` minimizes the total buffer;
//! * Eq. (18)–(19): under that split, `Bᵢ = σ̂ᵢ + S·√(σ̂ᵢρ̂ᵢ)/(R−ρ)` and
//!   `B_hybrid = σ + S²/(R−ρ)` with `S = Σ√(σ̂ᵢρ̂ᵢ)`;
//! * Eq. (17): `B_FIFO − B_hybrid = (σρ − S²)/(R−ρ) ≥ 0` by
//!   Cauchy–Schwarz — the pairwise form
//!   `Σ_{i<j}(√(σ̂ᵢρ̂ⱼ) − √(σ̂ⱼρ̂ᵢ))²` shows savings come from grouping
//!   *dissimilar* (σ/ρ-ratio) groups apart.
//!
//! Since `B_hybrid` depends on the grouping only through `S = Σ√(σ̂ᵢρ̂ᵢ)`,
//! finding the best grouping is the problem of partitioning flows to
//! minimize `S`; [`Grouping::optimize_contiguous`] solves it exactly over
//! σ/ρ-ratio-sorted contiguous partitions by dynamic programming, and
//! [`Grouping::optimize_exhaustive`] brute-forces small instances to
//! validate the heuristic.

use crate::flow::FlowSpec;
use crate::units::approx_eq;

/// Aggregate `(σ̂, ρ̂)` profile of one queue's flow group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupProfile {
    /// Combined burst σ̂ᵢ, bytes.
    pub sigma_bytes: f64,
    /// Combined token rate ρ̂ᵢ, bits/s.
    pub rho_bps: f64,
    /// Number of flows aggregated (footnote 6 applies when 1).
    pub n_flows: usize,
}

impl GroupProfile {
    /// Aggregate a set of specs into one profile.
    pub fn from_specs(specs: &[FlowSpec]) -> GroupProfile {
        GroupProfile {
            sigma_bytes: specs.iter().map(|s| s.bucket_bytes as f64).sum(),
            rho_bps: specs.iter().map(|s| s.token_rate.bps() as f64).sum(),
            n_flows: specs.len(),
        }
    }

    /// `√(σ̂ᵢ·ρ̂ᵢ)` — the group's contribution to `S`.
    pub fn s_term(&self) -> f64 {
        (self.sigma_bytes * self.rho_bps).sqrt()
    }
}

/// Eq. (14): the buffer-minimizing split `αᵢ = √(σ̂ᵢρ̂ᵢ)/S` of the excess
/// capacity. Degenerate groups (σ̂ᵢρ̂ᵢ = 0) receive an equal share of
/// whatever weight is left so rates stay feasible.
pub fn optimal_alphas(groups: &[GroupProfile]) -> Vec<f64> {
    assert!(!groups.is_empty());
    let s: f64 = groups.iter().map(|g| g.s_term()).sum();
    if approx_eq(s, 0.0, f64::EPSILON) {
        return vec![1.0 / groups.len() as f64; groups.len()];
    }
    groups.iter().map(|g| g.s_term() / s).collect()
}

/// Eq. (16): per-queue service rates `Rᵢ = ρ̂ᵢ + αᵢ(R − ρ)` in b/s.
/// Panics if the groups oversubscribe the link (`ρ ≥ R` leaves no
/// excess and makes Eq. 11 diverge).
pub fn rate_assignment_eq16(r_bps: f64, groups: &[GroupProfile], alphas: &[f64]) -> Vec<f64> {
    assert_eq!(groups.len(), alphas.len());
    let rho: f64 = groups.iter().map(|g| g.rho_bps).sum();
    assert!(
        rho < r_bps,
        "groups oversubscribe the link: {rho} >= {r_bps}"
    );
    let excess = r_bps - rho;
    groups
        .iter()
        .zip(alphas)
        .map(|(g, a)| g.rho_bps + a * excess)
        .collect()
}

/// Eq. (11): buffer needed by a queue served at `r_i_bps` — with the
/// footnote-6 refinement for single-flow queues.
pub fn queue_buffer_eq11(group: &GroupProfile, r_i_bps: f64) -> f64 {
    if group.n_flows <= 1 {
        return group.sigma_bytes;
    }
    assert!(
        r_i_bps > group.rho_bps,
        "queue rate {r_i_bps} at or below its reservation {}",
        group.rho_bps
    );
    r_i_bps * group.sigma_bytes / (r_i_bps - group.rho_bps)
}

/// Eq. (18): queue `i`'s buffer under the optimal rate split:
/// `Bᵢ = σ̂ᵢ + S·√(σ̂ᵢρ̂ᵢ)/(R − ρ)`.
pub fn per_queue_buffer_eq18(group: &GroupProfile, s_total: f64, r_minus_rho_bps: f64) -> f64 {
    assert!(r_minus_rho_bps > 0.0);
    group.sigma_bytes + s_total * group.s_term() / r_minus_rho_bps
}

/// Eq. (19): total hybrid buffer under the optimal split:
/// `B_hybrid = σ + S²/(R − ρ)`.
pub fn hybrid_buffer_eq19(r_bps: f64, groups: &[GroupProfile]) -> f64 {
    let rho: f64 = groups.iter().map(|g| g.rho_bps).sum();
    let sigma: f64 = groups.iter().map(|g| g.sigma_bytes).sum();
    assert!(rho < r_bps, "oversubscribed");
    let s: f64 = groups.iter().map(|g| g.s_term()).sum();
    sigma + s * s / (r_bps - rho)
}

/// Eq. (13): the single-FIFO-queue requirement `B = R·σ/(R − ρ)`.
pub fn single_fifo_buffer_eq13(r_bps: f64, sigma_bytes: f64, rho_bps: f64) -> f64 {
    assert!(rho_bps < r_bps, "oversubscribed");
    r_bps * sigma_bytes / (r_bps - rho_bps)
}

/// Eq. (17): the buffer saved by the hybrid system,
/// `(σρ − S²)/(R − ρ)`; non-negative by Cauchy–Schwarz.
pub fn buffer_savings_eq17(r_bps: f64, groups: &[GroupProfile]) -> f64 {
    let rho: f64 = groups.iter().map(|g| g.rho_bps).sum();
    let sigma: f64 = groups.iter().map(|g| g.sigma_bytes).sum();
    assert!(rho < r_bps, "oversubscribed");
    let s: f64 = groups.iter().map(|g| g.s_term()).sum();
    (sigma * rho - s * s) / (r_bps - rho)
}

/// An assignment of flows to `k` queues.
#[derive(Debug, Clone, PartialEq)]
pub struct Grouping {
    /// `assignment[f]` = queue index of flow `f`.
    pub assignment: Vec<usize>,
    /// Number of queues `k`.
    pub k: usize,
}

impl Grouping {
    /// Build from an explicit assignment vector; validates indices and
    /// that every queue is non-empty.
    pub fn new(assignment: Vec<usize>, k: usize) -> Grouping {
        assert!(k >= 1);
        let mut seen = vec![false; k];
        for &q in &assignment {
            assert!(q < k, "queue index {q} out of range (k = {k})");
            seen[q] = true;
        }
        assert!(seen.iter().all(|&s| s), "a queue has no flows");
        Grouping { assignment, k }
    }

    /// Aggregate per-queue profiles for `specs` under this grouping.
    pub fn profiles(&self, specs: &[FlowSpec]) -> Vec<GroupProfile> {
        assert_eq!(specs.len(), self.assignment.len());
        let mut out = vec![
            GroupProfile {
                sigma_bytes: 0.0,
                rho_bps: 0.0,
                n_flows: 0
            };
            self.k
        ];
        for (spec, &q) in specs.iter().zip(&self.assignment) {
            out[q].sigma_bytes += spec.bucket_bytes as f64;
            out[q].rho_bps += spec.token_rate.bps() as f64;
            out[q].n_flows += 1;
        }
        out
    }

    /// Total buffer (Eq. 19) for this grouping under the optimal rate
    /// split on a rate-`r_bps` link.
    pub fn total_buffer(&self, specs: &[FlowSpec], r_bps: f64) -> f64 {
        hybrid_buffer_eq19(r_bps, &self.profiles(specs))
    }

    /// The flow indices in each queue (convenience for configuration).
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut m = vec![Vec::new(); self.k];
        for (f, &q) in self.assignment.iter().enumerate() {
            m[q].push(f);
        }
        m
    }

    /// Exact optimum over *contiguous* partitions of the flows sorted by
    /// burstiness ratio `σ/ρ`, via O(N²k) dynamic programming.
    ///
    /// Minimizing Eq. 19 is minimizing `S = Σ√(σ̂ᵢρ̂ᵢ)`, which is additive
    /// over groups, so a shortest-path DP over cut positions is exact
    /// within this family. The σ/ρ ordering is the paper's own intuition
    /// ("grouping flows such that one queue has significantly lower rate
    /// and burst requirements compared to another is beneficial") — and
    /// [`Grouping::optimize_exhaustive`] confirms the family contains the
    /// global optimum on every small instance we test.
    pub fn optimize_contiguous(specs: &[FlowSpec], k: usize) -> Grouping {
        assert!(k >= 1 && k <= specs.len());
        let n = specs.len();
        // Sort flow indices by σ/ρ (∞ for ρ = 0 flows — pure bursts last).
        let mut order: Vec<usize> = (0..n).collect();
        let ratio = |f: usize| {
            let s = &specs[f];
            if s.token_rate.bps() == 0 {
                f64::INFINITY
            } else {
                s.bucket_bytes as f64 / s.token_rate.bps() as f64
            }
        };
        order.sort_by(|&a, &b| ratio(a).partial_cmp(&ratio(b)).unwrap());
        // Prefix sums over the sorted order.
        let mut ps = vec![0.0f64; n + 1]; // σ prefix, bytes
        let mut pr = vec![0.0f64; n + 1]; // ρ prefix, b/s
        for (i, &f) in order.iter().enumerate() {
            ps[i + 1] = ps[i] + specs[f].bucket_bytes as f64;
            pr[i + 1] = pr[i] + specs[f].token_rate.bps() as f64;
        }
        let seg_cost = |a: usize, b: usize| {
            // cost of grouping sorted[a..b) into one queue: √(σ̂ρ̂)
            ((ps[b] - ps[a]) * (pr[b] - pr[a])).sqrt()
        };
        // dp[j][i] = min S for first i flows in j groups.
        let inf = f64::INFINITY;
        let mut dp = vec![vec![inf; n + 1]; k + 1];
        let mut cut = vec![vec![0usize; n + 1]; k + 1];
        dp[0][0] = 0.0;
        for j in 1..=k {
            for i in j..=n {
                for a in (j - 1)..i {
                    let c = dp[j - 1][a] + seg_cost(a, i);
                    if c < dp[j][i] {
                        dp[j][i] = c;
                        cut[j][i] = a;
                    }
                }
            }
        }
        // Reconstruct.
        let mut assignment = vec![0usize; n];
        let mut i = n;
        for j in (1..=k).rev() {
            let a = cut[j][i];
            for &f in &order[a..i] {
                assignment[f] = j - 1;
            }
            i = a;
        }
        Grouping::new(assignment, k)
    }

    /// Global optimum by enumerating all set partitions into exactly `k`
    /// groups (restricted-growth strings). Exponential — panics above 14
    /// flows; used to validate [`Grouping::optimize_contiguous`].
    pub fn optimize_exhaustive(specs: &[FlowSpec], k: usize) -> Grouping {
        let n = specs.len();
        assert!(n <= 14, "exhaustive search limited to 14 flows");
        assert!(k >= 1 && k <= n);
        let mut best: Option<(f64, Vec<usize>)> = None;
        // Restricted growth string enumeration: a[i] ≤ max(a[0..i]) + 1.
        let mut a = vec![0usize; n];
        loop {
            let used = a.iter().copied().max().unwrap() + 1;
            if used == k {
                let g = Grouping {
                    assignment: a.clone(),
                    k,
                };
                let s: f64 = g.profiles(specs).iter().map(|p| p.s_term()).sum();
                if best.as_ref().is_none_or(|(bs, _)| s < *bs) {
                    best = Some((s, a.clone()));
                }
            }
            // Next restricted growth string.
            let mut i = n - 1;
            loop {
                if i == 0 {
                    let (_, assignment) = best.expect("no valid partition found");
                    return Grouping::new(assignment, k);
                }
                let prefix_max = a[..i].iter().copied().max().unwrap();
                if a[i] <= prefix_max {
                    a[i] += 1;
                    for x in a.iter_mut().skip(i + 1) {
                        *x = 0;
                    }
                    break;
                }
                a[i] = 0;
                i -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowId;
    use crate::units::{ByteSize, Rate};
    use proptest::prelude::*;

    fn spec(i: u32, rho_mbps: f64, bucket_kib: u64) -> FlowSpec {
        FlowSpec::builder(FlowId(i))
            .token_rate(Rate::from_mbps(rho_mbps))
            .bucket(ByteSize::from_kib(bucket_kib).bytes())
            .build()
    }

    /// The paper's Case 1 grouping of Table 1: {0,1,2}, {3,4,5}, {6,7,8}.
    fn table1_groups() -> Vec<GroupProfile> {
        let g1: Vec<FlowSpec> = (0..3).map(|i| spec(i, 2.0, 50)).collect();
        let g2: Vec<FlowSpec> = (3..6).map(|i| spec(i, 8.0, 100)).collect();
        let g3 = vec![spec(6, 0.4, 50), spec(7, 0.4, 50), spec(8, 2.0, 50)];
        vec![
            GroupProfile::from_specs(&g1),
            GroupProfile::from_specs(&g2),
            GroupProfile::from_specs(&g3),
        ]
    }

    const R: f64 = 48e6;

    #[test]
    fn alphas_sum_to_one_and_follow_eq14() {
        let groups = table1_groups();
        let a = optimal_alphas(&groups);
        let sum: f64 = a.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        let s: f64 = groups.iter().map(|g| g.s_term()).sum();
        for (ai, g) in a.iter().zip(&groups) {
            assert!((ai - g.s_term() / s).abs() < 1e-12);
        }
    }

    #[test]
    fn rates_cover_reservations_and_sum_to_link() {
        let groups = table1_groups();
        let a = optimal_alphas(&groups);
        let rates = rate_assignment_eq16(R, &groups, &a);
        let total: f64 = rates.iter().sum();
        assert!((total - R).abs() < 1e-6);
        for (r_i, g) in rates.iter().zip(&groups) {
            assert!(*r_i > g.rho_bps);
        }
    }

    #[test]
    fn eq18_matches_eq11_under_optimal_rates() {
        let groups = table1_groups();
        let a = optimal_alphas(&groups);
        let rates = rate_assignment_eq16(R, &groups, &a);
        let rho: f64 = groups.iter().map(|g| g.rho_bps).sum();
        let s: f64 = groups.iter().map(|g| g.s_term()).sum();
        for (g, r_i) in groups.iter().zip(&rates) {
            let b11 = queue_buffer_eq11(g, *r_i);
            let b18 = per_queue_buffer_eq18(g, s, R - rho);
            assert!((b11 - b18).abs() / b18 < 1e-12, "{b11} vs {b18}");
        }
    }

    #[test]
    fn eq19_is_sum_of_eq18_and_eq17_identity_holds() {
        let groups = table1_groups();
        let rho: f64 = groups.iter().map(|g| g.rho_bps).sum();
        let sigma: f64 = groups.iter().map(|g| g.sigma_bytes).sum();
        let s: f64 = groups.iter().map(|g| g.s_term()).sum();
        let b19 = hybrid_buffer_eq19(R, &groups);
        let sum18: f64 = groups
            .iter()
            .map(|g| per_queue_buffer_eq18(g, s, R - rho))
            .sum();
        assert!((b19 - sum18).abs() / b19 < 1e-12);
        // Eq 17 = Eq 13 − Eq 19.
        let savings = buffer_savings_eq17(R, &groups);
        let direct = single_fifo_buffer_eq13(R, sigma, rho) - b19;
        assert!((savings - direct).abs() / direct.max(1.0) < 1e-9);
        // And matches the pairwise (i<j) Cauchy–Schwarz form.
        let mut pairwise = 0.0;
        for i in 0..groups.len() {
            for j in (i + 1)..groups.len() {
                let d = (groups[i].sigma_bytes * groups[j].rho_bps).sqrt()
                    - (groups[j].sigma_bytes * groups[i].rho_bps).sqrt();
                pairwise += d * d;
            }
        }
        pairwise /= R - rho;
        assert!((savings - pairwise).abs() / savings.max(1.0) < 1e-9);
    }

    #[test]
    fn proportional_split_recovers_single_fifo() {
        // αᵢ = ρ̂ᵢ/ρ gives no savings (paper's observation before Prop 3).
        let groups = table1_groups();
        let rho: f64 = groups.iter().map(|g| g.rho_bps).sum();
        let sigma: f64 = groups.iter().map(|g| g.sigma_bytes).sum();
        let alphas: Vec<f64> = groups.iter().map(|g| g.rho_bps / rho).collect();
        let rates = rate_assignment_eq16(R, &groups, &alphas);
        // Proportional split only collapses to the single-FIFO formula
        // when all groups share the same σ̂/ρ̂ ratio; test with clones.
        let uniform = vec![groups[0]; 3];
        let rho_u = 3.0 * groups[0].rho_bps;
        let sigma_u = 3.0 * groups[0].sigma_bytes;
        let alphas_u = vec![1.0 / 3.0; 3];
        let rates_u = rate_assignment_eq16(R, &uniform, &alphas_u);
        let total_u: f64 = uniform
            .iter()
            .zip(&rates_u)
            .map(|(g, r)| queue_buffer_eq11(g, *r))
            .sum();
        let b13_u = single_fifo_buffer_eq13(R, sigma_u, rho_u);
        assert!((total_u - b13_u).abs() / b13_u < 1e-12);
        // For non-uniform groups proportional is strictly worse than optimal.
        let total_prop: f64 = groups
            .iter()
            .zip(&rates)
            .map(|(g, r)| queue_buffer_eq11(g, *r))
            .sum();
        let b19 = hybrid_buffer_eq19(R, &groups);
        assert!(total_prop >= b19 - 1e-6);
        let _ = sigma; // silence unused in case of refactor
    }

    #[test]
    fn single_flow_queue_uses_footnote6() {
        let g = GroupProfile {
            sigma_bytes: 1000.0,
            rho_bps: 1e6,
            n_flows: 1,
        };
        assert_eq!(queue_buffer_eq11(&g, 2e6), 1000.0);
    }

    #[test]
    fn grouping_profiles_and_members() {
        let specs: Vec<FlowSpec> = (0..4).map(|i| spec(i, 1.0, 10)).collect();
        let g = Grouping::new(vec![0, 1, 0, 1], 2);
        let p = g.profiles(&specs);
        assert_eq!(p[0].n_flows, 2);
        assert_eq!(p[0].rho_bps, 2e6);
        assert_eq!(g.members(), vec![vec![0, 2], vec![1, 3]]);
    }

    #[test]
    #[should_panic(expected = "no flows")]
    fn empty_queue_rejected() {
        let _ = Grouping::new(vec![0, 0], 2);
    }

    #[test]
    fn contiguous_dp_matches_exhaustive_on_table1() {
        let mut specs: Vec<FlowSpec> = Vec::new();
        for i in 0..3 {
            specs.push(spec(i, 2.0, 50));
        }
        for i in 3..6 {
            specs.push(spec(i, 8.0, 100));
        }
        specs.push(spec(6, 0.4, 50));
        specs.push(spec(7, 0.4, 50));
        specs.push(spec(8, 2.0, 50));
        for k in 1..=4 {
            let dp = Grouping::optimize_contiguous(&specs, k);
            let ex = Grouping::optimize_exhaustive(&specs, k);
            let b_dp = dp.total_buffer(&specs, R);
            let b_ex = ex.total_buffer(&specs, R);
            assert!(
                (b_dp - b_ex).abs() / b_ex < 1e-9,
                "k={k}: dp {b_dp} vs exhaustive {b_ex}"
            );
        }
    }

    #[test]
    fn more_queues_never_hurt() {
        let specs: Vec<FlowSpec> = (0..8)
            .map(|i| spec(i, 0.5 + i as f64, 10 + 20 * i as u64))
            .collect();
        let mut prev = f64::INFINITY;
        for k in 1..=6 {
            let g = Grouping::optimize_contiguous(&specs, k);
            let b = g.total_buffer(&specs, R);
            assert!(b <= prev + 1e-6, "k={k} worsened: {b} > {prev}");
            prev = b;
        }
    }

    proptest! {
        /// Prop 3 really is the minimizer: any perturbed feasible α does
        /// no better than Eq. 14 (checks the paper's variational proof).
        #[test]
        fn eq14_minimizes_buffer(
            sigmas in proptest::collection::vec(1.0f64..500_000.0, 2..5),
            rhos_mbps in proptest::collection::vec(0.1f64..10.0, 2..5),
            perturb in proptest::collection::vec(-0.2f64..0.2, 2..5),
        ) {
            let k = sigmas.len().min(rhos_mbps.len()).min(perturb.len());
            let groups: Vec<GroupProfile> = (0..k).map(|i| GroupProfile {
                sigma_bytes: sigmas[i],
                rho_bps: rhos_mbps[i] * 1e6,
                n_flows: 2,
            }).collect();
            let rho: f64 = groups.iter().map(|g| g.rho_bps).sum();
            prop_assume!(rho < 0.95 * R);
            let opt = optimal_alphas(&groups);
            // Perturb and renormalize, keeping all αᵢ > 0.
            let mut alt: Vec<f64> = opt.iter().zip(&perturb[..k])
                .map(|(a, d)| (a + d).max(1e-3)).collect();
            let s: f64 = alt.iter().sum();
            for a in &mut alt { *a /= s; }
            let cost = |alphas: &[f64]| -> f64 {
                let rates = rate_assignment_eq16(R, &groups, alphas);
                groups.iter().zip(&rates).map(|(g, r)| queue_buffer_eq11(g, *r)).sum()
            };
            prop_assert!(cost(&opt) <= cost(&alt) + 1e-6);
        }

        /// Eq. 17 savings are non-negative for any grouping and any flow mix.
        #[test]
        fn savings_nonnegative(
            sigmas in proptest::collection::vec(1.0f64..500_000.0, 1..6),
            rhos_mbps in proptest::collection::vec(0.1f64..8.0, 1..6),
        ) {
            let k = sigmas.len().min(rhos_mbps.len());
            let groups: Vec<GroupProfile> = (0..k).map(|i| GroupProfile {
                sigma_bytes: sigmas[i],
                rho_bps: rhos_mbps[i] * 1e6,
                n_flows: 2,
            }).collect();
            let rho: f64 = groups.iter().map(|g| g.rho_bps).sum();
            prop_assume!(rho < 0.95 * R);
            prop_assert!(buffer_savings_eq17(R, &groups) >= -1e-9);
        }
    }
}

/// Smallest number of queues `k` whose optimally-grouped hybrid fits a
/// buffer budget of `budget_bytes` — the practical sizing question §4
/// leaves open ("the choice of a given number of queues is primarily
/// dictated by the implementation complexity that can be tolerated").
///
/// Returns `None` if even `k = specs.len()` (pure per-flow WFQ, where
/// each queue needs only σ̂ by footnote 6 — i.e. Σσ total) exceeds the
/// budget.
pub fn min_queues_for_budget(
    specs: &[crate::flow::FlowSpec],
    r_bps: f64,
    budget_bytes: f64,
) -> Option<usize> {
    let sum_sigma: f64 = specs.iter().map(|s| s.bucket_bytes as f64).sum();
    if sum_sigma > budget_bytes {
        return None; // even ideal per-flow WFQ cannot fit
    }
    for k in 1..=specs.len() {
        let g = Grouping::optimize_contiguous(specs, k);
        // Exact objective incl. footnote 6 for single-flow queues.
        let total: f64 = {
            let profiles = g.profiles(specs);
            let rho: f64 = profiles.iter().map(|p| p.rho_bps).sum();
            if rho >= r_bps {
                f64::INFINITY
            } else {
                let alphas = optimal_alphas(&profiles);
                let rates = rate_assignment_eq16(r_bps, &profiles, &alphas);
                profiles
                    .iter()
                    .zip(&rates)
                    .map(|(p, r)| queue_buffer_eq11(p, *r))
                    .sum()
            }
        };
        if total <= budget_bytes {
            return Some(k);
        }
    }
    Some(specs.len())
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use crate::flow::{FlowId, FlowSpec};
    use crate::units::Rate;

    fn mix() -> Vec<FlowSpec> {
        (0..8)
            .map(|i| {
                FlowSpec::builder(FlowId(i))
                    .token_rate(Rate::from_mbps(0.5 + i as f64))
                    .bucket(10_240 + 20_480 * i as u64)
                    .build()
            })
            .collect()
    }

    #[test]
    fn generous_budget_needs_one_queue() {
        let specs = mix();
        let b13 = single_fifo_buffer_eq13(
            48e6,
            specs.iter().map(|s| s.bucket_bytes as f64).sum(),
            specs.iter().map(|s| s.token_rate.bps() as f64).sum(),
        );
        assert_eq!(min_queues_for_budget(&specs, 48e6, b13 * 1.01), Some(1));
    }

    #[test]
    fn tighter_budgets_need_more_queues() {
        let specs = mix();
        let sigma: f64 = specs.iter().map(|s| s.bucket_bytes as f64).sum();
        let b13 = single_fifo_buffer_eq13(
            48e6,
            sigma,
            specs.iter().map(|s| s.token_rate.bps() as f64).sum(),
        );
        // Between Σσ and B_FIFO, some finite k suffices and k grows as
        // the budget shrinks.
        let k_mid = min_queues_for_budget(&specs, 48e6, (sigma + b13) / 2.0).unwrap();
        assert!(k_mid >= 1 && k_mid <= specs.len());
        let k_tight = min_queues_for_budget(&specs, 48e6, sigma * 1.05).unwrap();
        assert!(k_tight >= k_mid, "k_tight {k_tight} < k_mid {k_mid}");
        // Below Σσ nothing fits.
        assert_eq!(min_queues_for_budget(&specs, 48e6, sigma * 0.5), None);
    }
}
