//! Closed-form results from the paper.
//!
//! * [`fifo_bounds`] — Propositions 1 and 2: per-flow lossless buffer
//!   thresholds under FIFO, and the Eq. 9/10 total-buffer requirement;
//! * [`example1`] — the Example 1 greedy-flow dynamics: the interval
//!   recurrence, its closed form, and the asymptotic service rates;
//! * [`delay`] — the §1 delay trade-off: FIFO worst-case vs the
//!   Parekh–Gallager WFQ per-flow bound;
//! * [`hybrid`] — §4: Proposition 3's optimal rate split across `k`
//!   FIFO queues, per-queue buffer needs (Eq. 18), total hybrid buffer
//!   (Eq. 19), the buffer-savings identity (Eq. 17), and flow-grouping
//!   search utilities.

pub mod delay;
pub mod example1;
pub mod fifo_bounds;
pub mod hybrid;

pub use delay::{
    burstiness_along_path, delay_inflation, fifo_delay_bound, output_burstiness_bytes,
    wfq_delay_bound,
};
pub use example1::{Example1, Interval};
pub use fifo_bounds::{
    peak_rate_threshold, required_buffer_eq9, token_bucket_threshold, worst_case_delay,
};
pub use hybrid::{
    buffer_savings_eq17, hybrid_buffer_eq19, min_queues_for_budget, optimal_alphas,
    per_queue_buffer_eq18, rate_assignment_eq16, single_fifo_buffer_eq13, GroupProfile, Grouping,
};
