//! The paper's Example 1: a conformant CBR flow versus a greedy flow.
//!
//! Setup: flow 1 arrives at constant rate `ρ₁` into a FIFO buffer of
//! size `B` whose threshold gives it `B₁ = B·ρ₁/R`; flow 2 is *greedy* —
//! it keeps its occupancy pinned at `B₂ = B − B₁` at all times.
//!
//! The paper tracks the system at the instants `t₀ < t₁ < …` where flow
//! 2's buffered backlog "clears". With `lᵢ = tᵢ − tᵢ₋₁`:
//!
//! ```text
//! l₁     = B₂/R
//! lᵢ₊₁  = (ρ₁/R)·lᵢ + B₂/R
//! Rᵢ²    = B₂/lᵢ           (flow 2's service rate in interval i)
//! Rᵢ¹    = R − Rᵢ²          (flow 1's)
//! ```
//!
//! with limits `lᵢ → B₂/(R−ρ₁)`, `Rᵢ¹ → ρ₁`, `Rᵢ² → R−ρ₁`: the
//! conformant flow *asymptotically* receives its guaranteed rate without
//! ever losing a bit — the necessity half of the threshold rule.

/// One interval `(tᵢ₋₁, tᵢ)` of the Example 1 dynamics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Interval index `i ≥ 1`.
    pub i: usize,
    /// Start time `tᵢ₋₁`, seconds.
    pub start: f64,
    /// Length `lᵢ = tᵢ − tᵢ₋₁`, seconds.
    pub len: f64,
    /// Flow 1's service rate `Rᵢ¹` during the interval, bits/s.
    pub rate1: f64,
    /// Flow 2's service rate `Rᵢ²` during the interval, bits/s.
    pub rate2: f64,
    /// Flow 1's buffer occupancy at the interval's *end*, bytes
    /// (`ρ₁·lᵢ` in bits, converted).
    pub q1_end_bytes: f64,
}

/// The Example 1 system. All rates bits/s, sizes bytes.
#[derive(Debug, Clone, Copy)]
pub struct Example1 {
    /// Link rate `R`.
    pub r_bps: f64,
    /// Flow 1's (conformant) arrival rate `ρ₁ < R`.
    pub rho1_bps: f64,
    /// Flow 2's pinned occupancy `B₂`, bytes.
    pub b2_bytes: f64,
}

impl Example1 {
    /// Configure from a total buffer `B` on a rate-`R` link, with flow 1
    /// reserved `ρ₁` (so `B₁ = B·ρ₁/R`, `B₂ = B − B₁`).
    pub fn from_buffer(b_bytes: f64, r_bps: f64, rho1_bps: f64) -> Example1 {
        assert!(r_bps > rho1_bps && rho1_bps > 0.0, "need 0 < ρ₁ < R");
        let b1 = b_bytes * rho1_bps / r_bps;
        Example1 {
            r_bps,
            rho1_bps,
            b2_bytes: b_bytes - b1,
        }
    }

    /// `l₁ = B₂/R` in seconds.
    pub fn l1(&self) -> f64 {
        self.b2_bytes * 8.0 / self.r_bps
    }

    /// The recurrence-limit interval length `l∞ = B₂/(R − ρ₁)`, seconds.
    pub fn l_limit(&self) -> f64 {
        self.b2_bytes * 8.0 / (self.r_bps - self.rho1_bps)
    }

    /// Closed form of the recurrence:
    /// `lᵢ = l∞·(1 − (ρ₁/R)ⁱ)` for `i ≥ 1`.
    pub fn l_closed_form(&self, i: usize) -> f64 {
        assert!(i >= 1, "intervals are 1-indexed");
        self.l_limit() * (1.0 - (self.rho1_bps / self.r_bps).powi(i as i32))
    }

    /// Iterate the exact dynamics. The iterator is infinite; take as
    /// many intervals as needed.
    pub fn intervals(&self) -> IntervalIter {
        IntervalIter {
            sys: *self,
            i: 0,
            start: 0.0,
            l: 0.0,
        }
    }

    /// Number of intervals until flow 1's service rate is within
    /// `tol` (relative) of its guarantee `ρ₁`.
    pub fn intervals_to_converge(&self, tol: f64) -> usize {
        assert!(tol > 0.0);
        for iv in self.intervals().take(10_000) {
            if (self.rho1_bps - iv.rate1).abs() / self.rho1_bps <= tol {
                return iv.i;
            }
        }
        usize::MAX
    }
}

/// Infinite iterator over Example 1 intervals (see [`Example1::intervals`]).
#[derive(Debug, Clone)]
pub struct IntervalIter {
    sys: Example1,
    i: usize,
    start: f64,
    l: f64,
}

impl Iterator for IntervalIter {
    type Item = Interval;

    fn next(&mut self) -> Option<Interval> {
        let s = &self.sys;
        self.i += 1;
        let prev_end = self.start + self.l;
        // l_{i+1} = (ρ₁/R)·lᵢ + B₂/R, seeded with l₀ = 0 so l₁ = B₂/R.
        self.l = (s.rho1_bps / s.r_bps) * self.l + s.b2_bytes * 8.0 / s.r_bps;
        self.start = if self.i == 1 { 0.0 } else { prev_end };
        let rate2 = (s.b2_bytes * 8.0) / self.l;
        let rate1 = s.r_bps - rate2;
        Some(Interval {
            i: self.i,
            start: self.start,
            len: self.l,
            rate1,
            rate2,
            q1_end_bytes: s.rho1_bps * self.l / 8.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> Example1 {
        // 48 Mb/s link, ρ₁ = 12 Mb/s, B = 1 MiB → B₁ = 256 KiB, B₂ = 768 KiB.
        Example1::from_buffer(1_048_576.0, 48e6, 12e6)
    }

    #[test]
    fn buffer_split_matches_prop1() {
        let s = sys();
        assert!((s.b2_bytes - 786_432.0).abs() < 1e-6);
    }

    #[test]
    fn first_interval_starves_flow1() {
        // R₁¹ = 0, R₁² = R: flow 2's initial backlog drains alone.
        let iv = sys().intervals().next().unwrap();
        assert_eq!(iv.i, 1);
        assert!((iv.rate1 - 0.0).abs() < 1e-6);
        assert!((iv.rate2 - 48e6).abs() < 1e-6);
        assert!((iv.len - sys().l1()).abs() < 1e-15);
        assert_eq!(iv.start, 0.0);
    }

    #[test]
    fn second_interval_rates_match_paper() {
        // Paper: after t₁, R₂¹ = ρ₁·R/(ρ₁+R), R₂² = R²/(ρ₁+R).
        let s = sys();
        let iv2 = s.intervals().nth(1).unwrap();
        let expect_r1 = s.rho1_bps * s.r_bps / (s.rho1_bps + s.r_bps);
        let expect_r2 = s.r_bps * s.r_bps / (s.rho1_bps + s.r_bps);
        assert!((iv2.rate1 - expect_r1).abs() / expect_r1 < 1e-12);
        assert!((iv2.rate2 - expect_r2).abs() / expect_r2 < 1e-12);
        // And R₂¹ < ρ₁ — still below guarantee (paper's remark).
        assert!(iv2.rate1 < s.rho1_bps);
    }

    #[test]
    fn recurrence_matches_closed_form() {
        let s = sys();
        for (idx, iv) in s.intervals().take(50).enumerate() {
            let cf = s.l_closed_form(idx + 1);
            assert!(
                (iv.len - cf).abs() / cf < 1e-12,
                "interval {} recurrence {} vs closed form {}",
                idx + 1,
                iv.len,
                cf
            );
        }
    }

    #[test]
    fn limits_match_paper() {
        let s = sys();
        let far = s.intervals().nth(200).unwrap();
        assert!((far.len - s.l_limit()).abs() / s.l_limit() < 1e-9);
        assert!((far.rate1 - s.rho1_bps).abs() / s.rho1_bps < 1e-9);
        assert!((far.rate2 - (s.r_bps - s.rho1_bps)).abs() < 1.0);
        // Flow 1 asymptotically fills exactly its allowed share:
        // q₁(∞) = ρ₁·l∞/8 = B₂ρ₁/(R−ρ₁)/8… in bytes this equals
        // ρ₁·B₂/(R−ρ₁) bits = B·ρ₁/R bytes = B₁. Check against B₁.
        let b1 = 1_048_576.0 * 12e6 / 48e6;
        assert!((far.q1_end_bytes - b1).abs() / b1 < 1e-9);
    }

    #[test]
    fn flow1_occupancy_never_exceeds_threshold() {
        // The necessity argument: the occupancy creeps up to B₁ but
        // never beyond (within floating error).
        let s = sys();
        let b1 = 1_048_576.0 - s.b2_bytes;
        for iv in s.intervals().take(500) {
            assert!(iv.q1_end_bytes <= b1 * (1.0 + 1e-12));
        }
    }

    #[test]
    fn rates_are_monotone_toward_guarantee() {
        let s = sys();
        let mut prev = -1.0;
        for iv in s.intervals().take(100) {
            assert!(iv.rate1 >= prev, "rate1 not monotone at {}", iv.i);
            prev = iv.rate1;
            assert!(iv.rate1 <= s.rho1_bps + 1e-6);
        }
    }

    #[test]
    fn convergence_speed_depends_on_utilization() {
        // Higher ρ₁/R converges more slowly (geometric ratio ρ₁/R).
        let slow = Example1::from_buffer(1e6, 48e6, 40e6).intervals_to_converge(0.01);
        let fast = Example1::from_buffer(1e6, 48e6, 4e6).intervals_to_converge(0.01);
        assert!(slow > fast, "{slow} vs {fast}");
    }

    #[test]
    fn interval_starts_chain() {
        let s = sys();
        let ivs: Vec<Interval> = s.intervals().take(10).collect();
        for w in ivs.windows(2) {
            assert!((w[0].start + w[0].len - w[1].start).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "need 0 < ρ₁ < R")]
    fn rho_at_link_rate_rejected() {
        let _ = Example1::from_buffer(1e6, 48e6, 48e6);
    }
}
