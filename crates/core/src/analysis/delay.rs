//! Delay bounds — the §1 trade-off quantified.
//!
//! The paper's §1 argument for trading scheduling precision away: on a
//! fast link, even the *worst-case* FIFO delay `B·8/R` is small (1 MB on
//! OC-48 < 3.5 ms), while WFQ's per-flow bound
//!
//! ```text
//! Dᵢ ≤ σᵢ/ρᵢ + Lᵢ/ρᵢ + L_max/R      (Parekh–Gallager, single node)
//! ```
//!
//! is *tight* per flow but requires the sorting scheduler. This module
//! provides both bounds so capacity planners can see exactly what delay
//! precision is given up by the buffer-management approach, per flow.
#![allow(clippy::items_after_test_module)] // composition utils grouped with their tests

use crate::flow::FlowSpec;
use crate::units::{Dur, Rate};

/// Worst-case FIFO queueing delay for *any* packet admitted to a
/// `b_bytes` buffer drained at `r`: every admitted packet waits at most
/// a full buffer plus its own transmission.
pub fn fifo_delay_bound(b_bytes: u64, r: Rate, pkt_bytes: u32) -> Dur {
    r.transmission_time(b_bytes + pkt_bytes as u64)
}

/// Parekh–Gallager single-node WFQ delay bound for a `(σᵢ, ρᵢ)` flow
/// whose WFQ weight equals its token rate: `σᵢ/ρᵢ + Lᵢ/ρᵢ + L_max/R`.
///
/// Returns `None` for a zero reserved rate (no guarantee exists).
pub fn wfq_delay_bound(spec: &FlowSpec, link: Rate, max_pkt_bytes: u32) -> Option<Dur> {
    if spec.token_rate.bps() == 0 {
        return None;
    }
    let burst = spec
        .token_rate
        .transmission_time(spec.bucket_bytes + max_pkt_bytes as u64);
    let store_forward = link.transmission_time(max_pkt_bytes as u64);
    Some(burst + store_forward)
}

/// How much looser the FIFO bound is than the WFQ bound for each flow —
/// the per-flow price of O(1) scheduling (≥ 1 when FIFO is looser,
/// which is the typical case for high-rate flows; low-rate flows can
/// actually have *worse* WFQ bounds because σ/ρ dominates).
pub fn delay_inflation(specs: &[FlowSpec], link: Rate, b_bytes: u64, pkt: u32) -> Vec<f64> {
    let fifo = fifo_delay_bound(b_bytes, link, pkt).as_secs_f64();
    specs
        .iter()
        .map(|s| match wfq_delay_bound(s, link, pkt) {
            Some(w) if w.as_nanos() > 0 => fifo / w.as_secs_f64(),
            _ => f64::INFINITY,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowId;

    fn spec(rho_mbps: f64, bucket: u64) -> FlowSpec {
        FlowSpec::builder(FlowId(0))
            .token_rate(Rate::from_mbps(rho_mbps))
            .bucket(bucket)
            .build()
    }

    #[test]
    fn oc48_claim_from_section_1() {
        let d = fifo_delay_bound(1 << 20, Rate::from_bps(2_400_000_000), 32);
        assert!(d < Dur::from_millis(4));
    }

    #[test]
    fn wfq_bound_components() {
        // σ = 50 KiB at ρ = 2 Mb/s: σ/ρ ≈ 204.8 ms dominates; plus one
        // 500 B packet at ρ (2 ms) and one at R (83 µs).
        let s = spec(2.0, 51_200);
        let d = wfq_delay_bound(&s, Rate::from_mbps(48.0), 500).unwrap();
        let expect = (51_200.0 + 500.0) * 8.0 / 2e6 + 500.0 * 8.0 / 48e6;
        assert!((d.as_secs_f64() - expect).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_flow_has_no_bound() {
        let s = spec(0.0, 1000);
        assert_eq!(wfq_delay_bound(&s, Rate::from_mbps(48.0), 500), None);
    }

    #[test]
    fn inflation_direction_depends_on_rate() {
        // High-rate flow: tight WFQ bound, so FIFO looks much looser.
        // Low-rate bursty flow: σ/ρ blows up the WFQ bound and FIFO can
        // even be tighter (inflation < 1) — the §1 argument that FIFO
        // delay is acceptable on fast links.
        let link = Rate::from_mbps(48.0);
        let b = 1u64 << 20;
        let specs = vec![spec(16.0, 10_000), spec(0.4, 51_200)];
        let infl = delay_inflation(&specs, link, b, 500);
        assert!(infl[0] > 1.0, "high-rate inflation {}", infl[0]);
        assert!(infl[1] < 1.0, "low-rate inflation {}", infl[1]);
    }

    #[test]
    fn fifo_bound_scales_linearly_with_buffer() {
        let link = Rate::from_mbps(48.0);
        let d1 = fifo_delay_bound(1 << 20, link, 500).as_secs_f64();
        let d2 = fifo_delay_bound(1 << 21, link, 500).as_secs_f64();
        assert!((d2 / d1 - 2.0).abs() < 0.01);
    }
}

/// Output burstiness of a flow after traversing a node with worst-case
/// delay `d` — the network-calculus composition rule `σ_out = σ + ρ·d`.
///
/// This is what makes multi-hop planning (the `qbm-sim::tandem`
/// extension) conservative: hop `i+1` should be provisioned for the
/// *inflated* burst, since a node can release up to `ρ·d` extra bytes
/// back-to-back after holding the flow for `d`.
pub fn output_burstiness_bytes(sigma_bytes: f64, rho: Rate, d: Dur) -> f64 {
    sigma_bytes + rho.bytes_per_sec() * d.as_secs_f64()
}

/// Per-hop burst inflation along a line of nodes with worst-case FIFO
/// delays `hop_delays`: returns σ after each hop (network-calculus
/// composition applied cumulatively).
pub fn burstiness_along_path(sigma_bytes: f64, rho: Rate, hop_delays: &[Dur]) -> Vec<f64> {
    let mut out = Vec::with_capacity(hop_delays.len());
    let mut sigma = sigma_bytes;
    for &d in hop_delays {
        sigma = output_burstiness_bytes(sigma, rho, d);
        out.push(sigma);
    }
    out
}

#[cfg(test)]
mod composition_tests {
    use super::*;
    use crate::flow::{FlowId, FlowSpec};

    #[test]
    fn output_burstiness_grows_linearly_with_delay() {
        let rho = Rate::from_mbps(2.0); // 250 KB/s
        let s1 = output_burstiness_bytes(51_200.0, rho, Dur::from_millis(100));
        assert!((s1 - (51_200.0 + 25_000.0)).abs() < 1e-9);
        // Zero delay: unchanged.
        assert_eq!(output_burstiness_bytes(51_200.0, rho, Dur::ZERO), 51_200.0);
    }

    #[test]
    fn path_composition_accumulates() {
        let rho = Rate::from_mbps(2.0);
        let d = Dur::from_millis(100); // 25 KB of inflation per hop
        let path = burstiness_along_path(51_200.0, rho, &[d, d, d]);
        assert_eq!(path.len(), 3);
        for (i, s) in path.iter().enumerate() {
            let expect = 51_200.0 + 25_000.0 * (i + 1) as f64;
            assert!((s - expect).abs() < 1e-9, "hop {i}: {s}");
        }
    }

    #[test]
    fn inflated_burst_feeds_downstream_threshold() {
        // The practical loop: hop-1 delay bound inflates σ; hop 2's
        // Prop-2 threshold must use the inflated value.
        let link = Rate::from_mbps(48.0);
        let b1 = 1u64 << 20;
        let spec = FlowSpec::builder(FlowId(0))
            .token_rate(Rate::from_mbps(2.0))
            .bucket(51_200)
            .build();
        let d1 = fifo_delay_bound(b1, link, 500);
        let sigma2 = output_burstiness_bytes(spec.bucket_bytes as f64, spec.token_rate, d1);
        let t2 = crate::analysis::fifo_bounds::token_bucket_threshold(
            b1 as f64,
            link.bps() as f64,
            spec.token_rate.bps() as f64,
            sigma2,
        );
        // Strictly larger than the naive single-hop threshold.
        let t1 = crate::analysis::fifo_bounds::token_bucket_threshold(
            b1 as f64,
            link.bps() as f64,
            spec.token_rate.bps() as f64,
            spec.bucket_bytes as f64,
        );
        assert!(t2 > t1);
    }
}
