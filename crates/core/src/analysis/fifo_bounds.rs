//! Propositions 1 and 2: lossless thresholds under FIFO.
//!
//! All quantities here are in *consistent* units: buffer/burst sizes in
//! bytes, rates in bits per second (converted internally), times in
//! seconds. Functions take `f64` because they are design-time formulas,
//! not hot-path code.

/// Proposition 1: a peak-rate-`rho` flow sharing a `b`-byte buffer on a
/// rate-`r` FIFO link never loses a bit if its occupancy threshold is
/// `b·ρ/R` bytes.
///
/// `rho_bps` and `r_bps` in bits/s, `b_bytes` in bytes; returns bytes.
pub fn peak_rate_threshold(b_bytes: f64, r_bps: f64, rho_bps: f64) -> f64 {
    assert!(r_bps > 0.0, "zero link rate");
    assert!(rho_bps >= 0.0 && b_bytes >= 0.0);
    b_bytes * rho_bps / r_bps
}

/// Proposition 2: a `(σ, ρ)`-constrained flow needs threshold
/// `σ + B·ρ/R` bytes. Both sufficient and (by the note after Prop. 2)
/// necessary.
pub fn token_bucket_threshold(b_bytes: f64, r_bps: f64, rho_bps: f64, sigma_bytes: f64) -> f64 {
    sigma_bytes + peak_rate_threshold(b_bytes, r_bps, rho_bps)
}

/// Eq. (9): total buffer required so that *every* flow's Prop. 2
/// threshold fits: `B ≥ R·Σσ/(R − Σρ)`. `f64::INFINITY` when `Σρ ≥ R`.
pub fn required_buffer_eq9(r_bps: f64, sum_rho_bps: f64, sum_sigma_bytes: f64) -> f64 {
    assert!(r_bps > 0.0, "zero link rate");
    if sum_rho_bps >= r_bps {
        return f64::INFINITY;
    }
    r_bps * sum_sigma_bytes / (r_bps - sum_rho_bps)
}

/// Worst-case FIFO queueing delay in seconds for a `b`-byte buffer on a
/// rate-`r` link — the §1 scalability argument (1 MByte on OC-48 is
/// under 3.5 ms).
pub fn worst_case_delay(b_bytes: f64, r_bps: f64) -> f64 {
    assert!(r_bps > 0.0, "zero link rate");
    b_bytes * 8.0 / r_bps
}

/// The `M̂ = B₂·ρ₁/(R − ρ₁)` bound from the Proposition 2 proof: the
/// supremum of `M(t) = Q₁(t) + σ₁(t) − σ₁`. Exposed so the fluid
/// validator can check the *proof's* invariant, not just its corollary.
pub fn m_hat(b2_bytes: f64, r_bps: f64, rho1_bps: f64) -> f64 {
    assert!(r_bps > rho1_bps, "flow rate at or above link rate");
    b2_bytes * rho1_bps / (r_bps - rho1_bps)
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: f64 = 48e6;

    #[test]
    fn prop1_proportional_share() {
        // ρ/R = 1/4 of a 1 MiB buffer.
        let t = peak_rate_threshold(1_048_576.0, R, 12e6);
        assert!((t - 262_144.0).abs() < 1e-9);
        // Zero rate -> zero threshold.
        assert_eq!(peak_rate_threshold(1e6, R, 0.0), 0.0);
        // Full-rate flow gets the whole buffer.
        assert!((peak_rate_threshold(1e6, R, R) - 1e6).abs() < 1e-9);
    }

    #[test]
    fn prop2_adds_burst() {
        let t = token_bucket_threshold(1_048_576.0, R, 12e6, 51_200.0);
        assert!((t - (51_200.0 + 262_144.0)).abs() < 1e-9);
    }

    #[test]
    fn eq9_consistency_with_thresholds() {
        // At B = required_buffer, the thresholds exactly tile the buffer:
        // Σ(σᵢ + ρᵢB/R) = Σσ + B·Σρ/R = B  ⟺  B = R·Σσ/(R−Σρ).
        let sum_rho = 32.8e6;
        let sum_sigma = 600.0 * 1024.0;
        let b = required_buffer_eq9(R, sum_rho, sum_sigma);
        let tiled = sum_sigma + sum_rho * b / R;
        assert!((tiled - b).abs() / b < 1e-12);
    }

    #[test]
    fn eq9_divergence_and_monotonicity() {
        assert!(required_buffer_eq9(R, R, 1.0).is_infinite());
        let mut prev = 0.0;
        for u in [0.1, 0.3, 0.5, 0.7, 0.9, 0.99] {
            let b = required_buffer_eq9(R, u * R, 1000.0);
            assert!(b > prev);
            prev = b;
        }
    }

    #[test]
    fn oc48_delay_claim() {
        // §1: 1 MByte buffer on 2.4 Gb/s < 3.5 ms.
        let d = worst_case_delay(1_048_576.0, 2.4e9);
        assert!(d < 3.5e-3 && d > 3.0e-3);
    }

    #[test]
    fn m_hat_consistent_with_prop2_threshold() {
        // With B₁ = σ₁ + Bρ₁/R and B₂ = B − B₁ the proof's bound
        // σ₁ + M̂ must not exceed B₁ (see DESIGN.md derivation).
        let b = 1_048_576.0;
        let (rho1, sigma1) = (12e6, 51_200.0);
        let b1 = token_bucket_threshold(b, R, rho1, sigma1);
        let b2 = b - b1;
        let bound = sigma1 + m_hat(b2, R, rho1);
        assert!(
            bound <= b1 + 1e-6,
            "proof bound {bound} exceeds threshold {b1}"
        );
    }
}
