//! # qbm-core
//!
//! Core library for *Scalable QoS Provision Through Buffer Management*
//! (Guérin, Kamat, Peris, Rajan — SIGCOMM 1998).
//!
//! The paper's thesis is that per-flow **rate guarantees** can be enforced
//! on a plain FIFO link using only **O(1) buffer management** — per-flow
//! buffer-occupancy thresholds — instead of the `O(log N)` sorted-priority
//! work of WFQ-class schedulers. This crate implements:
//!
//! * exact, drift-free [`units`] for time, rate, and size arithmetic;
//! * [`envelope`]/[`token_bucket`] — `(σ, ρ)` leaky-bucket traffic
//!   envelopes and the *burst potential* process of the paper's Eq. (3);
//! * [`flow`] — flow identities and traffic specifications;
//! * [`policy`] — the [`policy::BufferPolicy`] trait and all four packet
//!   admission policies evaluated in the paper: a plain shared buffer,
//!   fixed per-flow thresholds (`σᵢ + ρᵢ·B/R`, Propositions 1–2), the
//!   §3.3 buffer-sharing scheme with *holes* and *headroom*, and the §5
//!   future-work variant restricting sharing to adaptive flows;
//! * [`admission`] — the schedulability regions of §2.3 (Eqs. 5–10) with
//!   bandwidth-limited vs. buffer-limited classification;
//! * [`analysis`] — closed-form results: Prop. 1/2 buffer bounds, the
//!   Example 1 greedy-flow dynamics, and the Prop. 3 hybrid rate
//!   allocation with its buffer-savings formula (Eqs. 11–19).
//!
//! The crate is deliberately free of any simulation machinery (see
//! `qbm-sim`) so that the policies can be embedded in a real forwarding
//! path: every hot-path operation is a handful of integer compares.
//!
//! ## Quick taste
//!
//! ```
//! use qbm_core::prelude::*;
//!
//! // A 48 Mb/s link with a 1 MByte buffer (the paper's setup).
//! let link = LinkConfig::new(Rate::from_mbps(48.0), ByteSize::from_mib(1).bytes());
//!
//! // A flow reserving 2 Mb/s with a 50 KByte token bucket.
//! let spec = FlowSpec::builder(FlowId(0))
//!     .token_rate(Rate::from_mbps(2.0))
//!     .bucket(ByteSize::from_kib(50).bytes())
//!     .peak(Rate::from_mbps(16.0))
//!     .avg(Rate::from_mbps(2.0))
//!     .build();
//!
//! // Proposition 2: the lossless threshold is σ + B·ρ/R.
//! let thr = qbm_core::analysis::token_bucket_threshold(
//!     link.buffer_bytes as f64, link.rate.bps() as f64,
//!     spec.token_rate.bps() as f64, spec.bucket_bytes as f64);
//! assert!(thr > spec.bucket_bytes as f64);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod admission;
pub mod analysis;
pub mod envelope;
pub mod error;
pub mod flow;
pub mod policy;
pub mod token_bucket;
pub mod units;

/// Convenient glob-import of the most commonly used types.
pub mod prelude {
    pub use crate::admission::{AdmissionController, AdmissionOutcome, Discipline, LinkConfig};
    pub use crate::envelope::Envelope;
    pub use crate::flow::{Conformance, FlowId, FlowSpec};
    pub use crate::policy::{
        AdaptiveSharing, BufferPolicy, BufferSharing, DropReason, DynamicThreshold, FixedThreshold,
        Red, RedConfig, SharedBuffer, Verdict,
    };
    pub use crate::token_bucket::TokenBucket;
    pub use crate::units::{ByteSize, Dur, Rate, Time};
}
