//! Exact integer token-bucket state machine.
//!
//! A `(σ, ρ)` token bucket holds up to `σ` bytes worth of tokens and
//! refills at `ρ` bits/s. It is the paper's traffic envelope (Eq. 2) and
//! its fill level at time `t` *is* the burst-potential process `σᵢ(t)`
//! of Eq. (3).
//!
//! Token state is kept in **bit-nanoseconds** (`level / 10⁹` = bits), so
//! refill over any integer nanosecond span is exact and the meter never
//! drifts regardless of how often it is polled.

use crate::units::{Dur, Rate, Time, NS_PER_SEC};

/// A token bucket with byte-granularity conformance decisions.
///
/// Used in three roles:
/// * **meter** — [`TokenBucket::conforms`] checks whether a packet fits
///   the envelope right now (for conformance accounting in statistics);
/// * **shaper timing** — [`TokenBucket::time_until_conformant`] says how
///   long a leaky-bucket regulator must hold a packet;
/// * **burst potential** — [`TokenBucket::level_bytes`] is `σ(t)` from
///   the paper's Eq. (3).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Bucket depth σ, in bit-nanoseconds (σ_bytes · 8 · 10⁹).
    depth_bitns: u128,
    /// Token rate ρ.
    rate: Rate,
    /// Current token level, in bit-nanoseconds. Starts full (a flow may
    /// open with its whole burst, as in the paper's proofs).
    level_bitns: u128,
    /// Last time `level_bitns` was brought up to date.
    last_update: Time,
}

impl TokenBucket {
    /// Create a full bucket of `sigma_bytes` depth refilling at `rate`.
    pub fn new(sigma_bytes: u64, rate: Rate) -> TokenBucket {
        let depth = bitns(sigma_bytes * 8);
        TokenBucket {
            depth_bitns: depth,
            rate,
            level_bitns: depth,
            last_update: Time::ZERO,
        }
    }

    /// Bucket depth σ in bytes.
    pub fn sigma_bytes(&self) -> u64 {
        (self.depth_bitns / (8 * NS_PER_SEC as u128)) as u64
    }

    /// Token rate ρ.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Advance the refill clock to `now`. Idempotent; callers may poll.
    pub fn update(&mut self, now: Time) {
        debug_assert!(
            now >= self.last_update,
            "token bucket clock moved backwards"
        );
        let dt = now.since(self.last_update);
        // rate(b/s) × dt(ns) is exactly the accrued bit-nanoseconds.
        let gained = self.rate.bps() as u128 * dt.as_nanos() as u128;
        self.level_bitns = (self.level_bitns + gained).min(self.depth_bitns);
        self.last_update = now;
    }

    /// Current token level in (fractional) bytes — the burst potential
    /// `σ(t)` of the paper's Eq. (3). Call [`update`](Self::update) first
    /// (or use [`level_bytes_at`](Self::level_bytes_at)).
    pub fn level_bytes(&self) -> f64 {
        self.level_bitns as f64 / (8.0 * NS_PER_SEC as f64)
    }

    /// Burst potential at `now`, advancing the clock.
    pub fn level_bytes_at(&mut self, now: Time) -> f64 {
        self.update(now);
        self.level_bytes()
    }

    /// Would a `len_bytes` packet conform at `now`? Does **not** consume.
    pub fn conforms(&mut self, now: Time, len_bytes: u64) -> bool {
        self.update(now);
        bitns(len_bytes * 8) <= self.level_bitns
    }

    /// Consume tokens for a `len_bytes` packet at `now`, returning `true`
    /// if it conformed. A non-conformant packet consumes nothing (the
    /// meter role: we count it as a red packet and move on).
    pub fn try_consume(&mut self, now: Time, len_bytes: u64) -> bool {
        self.update(now);
        let need = bitns(len_bytes * 8);
        if need <= self.level_bitns {
            self.level_bitns -= need;
            true
        } else {
            false
        }
    }

    /// Consume tokens unconditionally, letting the level go into debt is
    /// not allowed — panics if insufficient. Regulators call this only
    /// after waiting out [`time_until_conformant`](Self::time_until_conformant).
    pub fn consume(&mut self, now: Time, len_bytes: u64) {
        assert!(
            self.try_consume(now, len_bytes),
            "consume() without sufficient tokens"
        );
    }

    /// How long after `now` until a `len_bytes` packet conforms.
    ///
    /// Returns `Dur::ZERO` if it conforms already, `None` if it never
    /// will (packet larger than the bucket, or zero rate with an empty
    /// bucket).
    pub fn time_until_conformant(&mut self, now: Time, len_bytes: u64) -> Option<Dur> {
        self.update(now);
        let need = bitns(len_bytes * 8);
        if need <= self.level_bitns {
            return Some(Dur::ZERO);
        }
        if need > self.depth_bitns || self.rate.bps() == 0 {
            return None;
        }
        let deficit = need - self.level_bitns;
        let ns = deficit.div_ceil(self.rate.bps() as u128);
        Some(Dur(ns as u64))
    }
}

fn bitns(bits: u64) -> u128 {
    bits as u128 * NS_PER_SEC as u128
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::ByteSize;

    fn kib(k: u64) -> u64 {
        ByteSize::from_kib(k).bytes()
    }

    #[test]
    fn starts_full_and_caps_at_depth() {
        let mut tb = TokenBucket::new(kib(50), Rate::from_mbps(2.0));
        assert_eq!(tb.sigma_bytes(), kib(50));
        assert!((tb.level_bytes() - kib(50) as f64).abs() < 1e-9);
        tb.update(Time::from_secs(100));
        assert!((tb.level_bytes() - kib(50) as f64).abs() < 1e-9);
    }

    #[test]
    fn burst_then_refill_at_token_rate() {
        let mut tb = TokenBucket::new(kib(50), Rate::from_mbps(2.0));
        assert!(tb.try_consume(Time::ZERO, kib(50))); // drain the burst
        assert!((tb.level_bytes() - 0.0).abs() < 1e-9);
        // 2 Mb/s = 250_000 B/s; after 0.1 s we have 25_000 B of tokens.
        tb.update(Time::from_secs_f64(0.1));
        assert!((tb.level_bytes() - 25_000.0).abs() < 1e-6);
    }

    #[test]
    fn conforms_does_not_consume() {
        let mut tb = TokenBucket::new(1000, Rate::from_mbps(1.0));
        assert!(tb.conforms(Time::ZERO, 1000));
        assert!(tb.conforms(Time::ZERO, 1000)); // still there
        assert!(tb.try_consume(Time::ZERO, 1000));
        assert!(!tb.conforms(Time::ZERO, 1));
    }

    #[test]
    fn nonconformant_try_consume_leaves_level_intact() {
        let mut tb = TokenBucket::new(500, Rate::from_mbps(1.0));
        assert!(!tb.try_consume(Time::ZERO, 501));
        assert!(tb.try_consume(Time::ZERO, 500));
    }

    #[test]
    fn time_until_conformant_is_tight() {
        let mut tb = TokenBucket::new(500, Rate::from_mbps(2.0));
        tb.consume(Time::ZERO, 500);
        // Need 500 B = 4000 bits at 2 Mb/s -> exactly 2 ms.
        let wait = tb.time_until_conformant(Time::ZERO, 500).unwrap();
        assert_eq!(wait, Dur::from_millis(2));
        // At that instant it conforms, one ns earlier it must not.
        let mut probe = tb.clone();
        assert!(probe.conforms(Time::ZERO + wait, 500));
        let mut probe2 = tb.clone();
        assert!(!probe2.conforms(Time::ZERO + (wait - Dur(1)), 500));
    }

    #[test]
    fn oversized_packet_never_conforms() {
        let mut tb = TokenBucket::new(500, Rate::from_mbps(2.0));
        assert_eq!(tb.time_until_conformant(Time::ZERO, 501), None);
    }

    #[test]
    fn zero_rate_empty_bucket_never_conforms() {
        let mut tb = TokenBucket::new(500, Rate::ZERO);
        tb.consume(Time::ZERO, 500);
        assert_eq!(tb.time_until_conformant(Time::ZERO, 1), None);
        // But a still-full zero-rate bucket does conform (pure burst).
        let mut tb2 = TokenBucket::new(500, Rate::ZERO);
        assert_eq!(tb2.time_until_conformant(Time::ZERO, 500), Some(Dur::ZERO));
    }

    #[test]
    fn long_horizon_refill_has_no_drift() {
        // Poll a bucket every 7 ns for a while; level must equal the
        // closed-form min(σ, ρ·t) exactly in bit-ns.
        let mut tb = TokenBucket::new(kib(100), Rate::from_bps(1_234_567));
        tb.consume(Time::ZERO, kib(100));
        let mut now = Time::ZERO;
        for _ in 0..10_000 {
            now += Dur(7);
            tb.update(now);
        }
        let expect_bitns = 1_234_567u128 * now.as_nanos() as u128;
        let got_bitns = (tb.level_bytes() * 8.0 * NS_PER_SEC as f64).round() as u128;
        // f64 readback is the only lossy step; compare coarsely there
        // and exactly via a second consume probe.
        assert!((got_bitns as f64 - expect_bitns as f64).abs() / (expect_bitns as f64) < 1e-12);
    }
}
