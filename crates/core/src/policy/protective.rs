//! Protective partial buffer sharing — the policy family of the
//! paper's reference \[2\] (Cidon, Guérin & Khamisy, "Protective buffer
//! management policies").
//!
//! A single *global* occupancy threshold `T < B` splits operation into
//! two regimes:
//!
//! * **uncongested** (`Q < T`): every packet is admitted — full
//!   statistical sharing, maximum utilization;
//! * **congested** (`Q ≥ T`): only packets from flows still *below
//!   their reserved share* `rᵢ` are admitted — the remaining `B − T`
//!   is a protected pool that aggressive flows cannot touch.
//!
//! Compared to the paper's per-flow thresholds this needs the same
//! per-flow state but activates it only under congestion, trading some
//! protection (a blast can seize the whole shared region `T` first)
//! for utilization. Included as the second comparator from the paper's
//! own lineage; the benches show where it sits between `SharedBuffer`
//! and `FixedThreshold`.

use super::threshold::{compute_thresholds, ThresholdOptions};
use super::{BufferPolicy, DropReason, Occupancy, Verdict};
use crate::flow::{FlowId, FlowSpec};
use crate::units::Rate;

/// Two-regime protective policy (see module docs).
#[derive(Debug, Clone)]
pub struct PartialBufferSharing {
    occ: Occupancy,
    /// Global congestion threshold `T`, bytes.
    global_threshold: u64,
    /// Per-flow reserved shares `rᵢ` (Prop-2 formula over the protected
    /// pool), bytes.
    reserved: Vec<u64>,
}

impl PartialBufferSharing {
    /// Build with a congestion threshold at `T = threshold_frac·B`
    /// (e.g. 0.8) and reserved shares computed with the Prop-2 formula
    /// over the whole buffer (scaled per footnote 5).
    pub fn new(
        capacity_bytes: u64,
        link_rate: Rate,
        specs: &[FlowSpec],
        threshold_frac: f64,
    ) -> PartialBufferSharing {
        assert!(
            (0.0..=1.0).contains(&threshold_frac),
            "threshold fraction must be in [0, 1]"
        );
        let reserved = compute_thresholds(
            capacity_bytes,
            link_rate,
            specs,
            ThresholdOptions::default(),
        );
        PartialBufferSharing {
            occ: Occupancy::new(capacity_bytes, specs.len()),
            // One-time construction: T = frac·B, rounded to a byte.
            // qbm-lint: allow(float-cast)
            global_threshold: (capacity_bytes as f64 * threshold_frac).round() as u64,
            reserved,
        }
    }

    /// The configured global congestion threshold `T`, bytes.
    pub fn global_threshold(&self) -> u64 {
        self.global_threshold
    }

    /// True iff the buffer is currently in the congested regime.
    pub fn congested(&self) -> bool {
        self.occ.total() >= self.global_threshold
    }
}

impl BufferPolicy for PartialBufferSharing {
    fn admit(&mut self, flow: FlowId, len: u32) -> Verdict {
        if !self.occ.fits(len) {
            return Verdict::Drop(DropReason::BufferFull);
        }
        if self.congested() && self.occ.of(flow) + len as u64 > self.reserved[flow.index()] {
            return Verdict::Drop(DropReason::NoSharedSpace);
        }
        self.occ.charge(flow, len);
        Verdict::Admit
    }

    fn release(&mut self, flow: FlowId, len: u32) {
        self.occ.credit(flow, len);
    }

    fn flow_occupancy(&self, flow: FlowId) -> u64 {
        self.occ.of(flow)
    }

    fn total_occupancy(&self) -> u64 {
        self.occ.total()
    }

    fn capacity(&self) -> u64 {
        self.occ.capacity()
    }

    fn threshold(&self, flow: FlowId) -> Option<u64> {
        Some(self.reserved[flow.index()])
    }

    fn name(&self) -> &'static str {
        "partial-buffer-sharing"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::ByteSize;

    const LINK: Rate = Rate::from_bps(48_000_000);

    fn specs() -> Vec<FlowSpec> {
        vec![
            FlowSpec::builder(FlowId(0))
                .token_rate(Rate::from_mbps(2.0))
                .bucket(ByteSize::from_kib(10).bytes())
                .build(),
            FlowSpec::builder(FlowId(1))
                .token_rate(Rate::from_mbps(8.0))
                .bucket(ByteSize::from_kib(20).bytes())
                .build(),
        ]
    }

    #[test]
    fn uncongested_regime_admits_everything() {
        let mut p = PartialBufferSharing::new(100_000, LINK, &specs(), 0.8);
        assert_eq!(p.global_threshold(), 80_000);
        // Flow 0 alone can fill the whole shared region even though its
        // reserved share is smaller (full sharing below T).
        let mut got = 0u64;
        while !p.congested() {
            assert!(p.admit(FlowId(0), 500).admitted());
            got += 500;
        }
        assert_eq!(got, 80_000);
    }

    #[test]
    fn congested_regime_enforces_reserved_shares() {
        let mut p = PartialBufferSharing::new(100_000, LINK, &specs(), 0.5);
        // Flow 1 fills past the congestion threshold.
        while p.admit(FlowId(1), 500).admitted() {}
        assert!(p.congested());
        // Flow 1 is now over its reserved share -> refused; flow 0 is
        // below its share -> still admitted from the protected pool.
        assert_eq!(
            p.admit(FlowId(1), 500),
            Verdict::Drop(DropReason::NoSharedSpace)
        );
        assert!(p.admit(FlowId(0), 500).admitted());
    }

    #[test]
    fn protected_pool_cannot_be_seized() {
        // After the blast, flow 0 can still reach its full reserved
        // share (thresholds tile B by footnote 5; the blast stopped at
        // its own share once congested).
        let mut p = PartialBufferSharing::new(100_000, LINK, &specs(), 0.5);
        while p.admit(FlowId(1), 500).admitted() {}
        let r0 = p.threshold(FlowId(0)).unwrap();
        let mut got = 0u64;
        while p.admit(FlowId(0), 500).admitted() {
            got += 500;
        }
        assert!(
            got + 500 >= r0.min(p.capacity() - p.flow_occupancy(FlowId(1))),
            "flow 0 got {got} of reserved {r0}"
        );
    }

    #[test]
    fn regime_relaxes_when_queue_drains() {
        let mut p = PartialBufferSharing::new(10_000, LINK, &specs(), 0.5);
        while p.admit(FlowId(1), 500).admitted() {}
        assert!(p.congested());
        while p.congested() {
            p.release(FlowId(1), 500);
        }
        // Back below T: full sharing again.
        assert!(p.admit(FlowId(1), 500).admitted());
    }

    #[test]
    fn frac_edges() {
        // frac = 0: always congested — pure fixed partition.
        let mut p = PartialBufferSharing::new(10_000, LINK, &specs(), 0.0);
        assert!(p.congested());
        // frac = 1: never congested until full — pure shared buffer.
        let mut q = PartialBufferSharing::new(10_000, LINK, &specs(), 1.0);
        while q.admit(FlowId(0), 500).admitted() {}
        assert_eq!(q.total_occupancy(), 10_000);
        let _ = p.admit(FlowId(0), 500);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_rejected() {
        let _ = PartialBufferSharing::new(1000, LINK, &specs(), 1.5);
    }
}
