//! Random Early Detection (Floyd & Jacobson) — the classic AQM the
//! paper cites as a buffer-management baseline \[3\].
//!
//! RED keeps an EWMA of the total queue length and drops arriving
//! packets with a probability that ramps from 0 at `min_th` to `max_p`
//! at `max_th` (and 1 above). It has **no per-flow state at all**, so —
//! like [`super::SharedBuffer`] — it cannot protect conformant flows
//! from aggressive ones; it exists here as the "stateless AQM"
//! comparator for the extension benches (the paper's historical
//! context: RED-era AQM vs per-flow reservations).
//!
//! Deterministic: the drop lottery runs on a seeded ChaCha-less LCG so
//! the policy stays dependency-free and runs are reproducible.

use super::{BufferPolicy, DropReason, Occupancy, Verdict};
use crate::flow::FlowId;

/// RED configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedConfig {
    /// EWMA low-water mark, bytes: below this, never drop early.
    pub min_th_bytes: u64,
    /// EWMA high-water mark, bytes: above this, always drop.
    pub max_th_bytes: u64,
    /// Drop probability at `max_th` (the ramp's top), in (0, 1].
    pub max_p: f64,
    /// EWMA weight per arrival (classic RED uses 0.002).
    pub weight: f64,
    /// Lottery seed.
    pub seed: u64,
}

impl RedConfig {
    /// Floyd's rules of thumb for a buffer of `capacity` bytes:
    /// `min_th = B/4`, `max_th = 3B/4`, `max_p = 0.1`, `w = 0.002`.
    pub fn recommended(capacity_bytes: u64, seed: u64) -> RedConfig {
        RedConfig {
            min_th_bytes: capacity_bytes / 4,
            max_th_bytes: capacity_bytes * 3 / 4,
            max_p: 0.1,
            weight: 0.002,
            seed,
        }
    }
}

/// The RED policy (total-queue AQM, no per-flow state).
#[derive(Debug, Clone)]
pub struct Red {
    occ: Occupancy,
    cfg: RedConfig,
    /// EWMA of the total occupancy, bytes.
    avg: f64,
    /// Packets admitted since the last early drop (the count term of
    /// the original algorithm, uniformizing inter-drop gaps).
    count: u64,
    /// LCG state for the drop lottery.
    rng: u64,
}

impl Red {
    /// Build for `flows` flows (tracking only — admission ignores flow
    /// identity) over a `capacity_bytes` buffer.
    pub fn new(capacity_bytes: u64, flows: usize, cfg: RedConfig) -> Red {
        assert!(
            cfg.min_th_bytes < cfg.max_th_bytes,
            "min_th must be below max_th"
        );
        assert!(
            cfg.max_p > 0.0 && cfg.max_p <= 1.0,
            "max_p must be in (0, 1]"
        );
        assert!(
            cfg.weight > 0.0 && cfg.weight <= 1.0,
            "EWMA weight must be in (0, 1]"
        );
        Red {
            occ: Occupancy::new(capacity_bytes, flows),
            cfg,
            avg: 0.0,
            count: 0,
            rng: cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Current EWMA queue estimate, bytes.
    pub fn avg_queue(&self) -> f64 {
        self.avg
    }

    fn uniform(&mut self) -> f64 {
        // xorshift64* — tiny, seedable, plenty for a drop lottery.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl BufferPolicy for Red {
    fn admit(&mut self, flow: FlowId, len: u32) -> Verdict {
        // EWMA update on every arrival.
        self.avg += self.cfg.weight * (self.occ.total() as f64 - self.avg);
        if !self.occ.fits(len) {
            self.count = 0;
            return Verdict::Drop(DropReason::BufferFull);
        }
        if self.avg >= self.cfg.max_th_bytes as f64 {
            self.count = 0;
            return Verdict::Drop(DropReason::OverThreshold);
        }
        if self.avg > self.cfg.min_th_bytes as f64 {
            let span = (self.cfg.max_th_bytes - self.cfg.min_th_bytes) as f64;
            let pb = self.cfg.max_p * (self.avg - self.cfg.min_th_bytes as f64) / span;
            // Uniformized drop probability: pa = pb / (1 − count·pb).
            let pa = (pb / (1.0 - self.count as f64 * pb).max(1e-9)).min(1.0);
            if self.uniform() < pa {
                self.count = 0;
                return Verdict::Drop(DropReason::OverThreshold);
            }
            self.count += 1;
        } else {
            self.count = 0;
        }
        self.occ.charge(flow, len);
        Verdict::Admit
    }

    fn release(&mut self, flow: FlowId, len: u32) {
        self.occ.credit(flow, len);
    }

    fn flow_occupancy(&self, flow: FlowId) -> u64 {
        self.occ.of(flow)
    }

    fn total_occupancy(&self) -> u64 {
        self.occ.total()
    }

    fn capacity(&self) -> u64 {
        self.occ.capacity()
    }

    fn threshold(&self, _flow: FlowId) -> Option<u64> {
        None
    }

    fn name(&self) -> &'static str {
        "red"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn red(capacity: u64) -> Red {
        Red::new(capacity, 2, RedConfig::recommended(capacity, 7))
    }

    #[test]
    fn below_min_th_never_drops() {
        let mut p = red(100_000);
        // Keep instantaneous (and thus EWMA) queue below min_th = 25 KB.
        for i in 0..2000 {
            assert!(p.admit(FlowId(i % 2), 500).admitted());
            p.release(FlowId(i % 2), 500);
        }
        assert!(p.avg_queue() < 25_000.0);
    }

    #[test]
    fn sustained_congestion_triggers_early_drops() {
        let mut p = red(100_000);
        // Fill to 60 % and hold: EWMA climbs past min_th, drops begin
        // well before the buffer is full.
        let mut drops = 0;
        let mut admitted_total: u64 = 0;
        for _ in 0..5000 {
            match p.admit(FlowId(0), 500) {
                Verdict::Admit => {
                    admitted_total += 500;
                    if p.total_occupancy() > 60_000 {
                        p.release(FlowId(0), 500); // hold ~60 KB
                    }
                }
                Verdict::Drop(DropReason::OverThreshold) => drops += 1,
                Verdict::Drop(r) => panic!("unexpected {r:?}"),
            }
        }
        assert!(drops > 0, "no early drops under sustained 60% load");
        assert!(p.total_occupancy() < p.capacity(), "RED let the queue fill");
        assert!(admitted_total > 0);
    }

    #[test]
    fn ewma_above_max_th_drops_everything() {
        let mut p = red(100_000);
        // Slam the queue full and keep offering until the EWMA passes
        // max_th; from then on every arrival is dropped.
        let mut saw_hard_phase = false;
        for _ in 0..20_000 {
            let v = p.admit(FlowId(0), 500);
            if p.avg_queue() >= 75_000.0 {
                assert!(!v.admitted(), "admitted above max_th");
                saw_hard_phase = true;
                break;
            }
            if !v.admitted() {
                // keep queue pinned full so the EWMA keeps climbing
                continue;
            }
        }
        assert!(saw_hard_phase, "EWMA never reached max_th");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut p = Red::new(50_000, 1, RedConfig::recommended(50_000, seed));
            let mut verdicts = Vec::new();
            for _ in 0..3000 {
                let v = p.admit(FlowId(0), 500).admitted();
                verdicts.push(v);
                if p.total_occupancy() > 30_000 {
                    p.release(FlowId(0), 500);
                }
            }
            verdicts
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    #[should_panic(expected = "min_th")]
    fn inverted_thresholds_rejected() {
        let _ = Red::new(
            1000,
            1,
            RedConfig {
                min_th_bytes: 800,
                max_th_bytes: 200,
                max_p: 0.1,
                weight: 0.002,
                seed: 0,
            },
        );
    }
}
