//! Flow Random Early Drop (Lin & Morris) — the per-flow AQM the paper
//! cites alongside RED \[5\].
//!
//! FRED keeps RED's average-queue machinery but adds *per-active-flow*
//! accounting: each flow's instantaneous backlog `qlenᵢ` is compared to
//! the fair share `avgcq = avg / nactive`, and flows that persistently
//! overrun (`strike` counting) are clamped to the fair share while
//! fragile low-rate flows are protected below `min_q`. Like RED it has
//! **no reservations** — it aims at fairness among adaptive flows, not
//! at rate guarantees — which is exactly the gap the paper's threshold
//! scheme fills. Included as the strongest stateless-ish comparator.

use super::{BufferPolicy, DropReason, Occupancy, Verdict};
use crate::flow::FlowId;

/// FRED configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FredConfig {
    /// RED low-water mark on the average queue, bytes.
    pub min_th_bytes: u64,
    /// RED high-water mark, bytes.
    pub max_th_bytes: u64,
    /// Drop probability at `max_th`.
    pub max_p: f64,
    /// EWMA weight per arrival.
    pub weight: f64,
    /// Always-accept allowance per flow (the `min_q` protection),
    /// bytes — fragile flows below this never suffer early drops.
    pub min_q_bytes: u64,
    /// Lottery seed.
    pub seed: u64,
}

impl FredConfig {
    /// Lin & Morris-style defaults scaled to a buffer of
    /// `capacity_bytes`: RED thresholds at B/4 and 3B/4, `min_q` of two
    /// packets.
    pub fn recommended(capacity_bytes: u64, seed: u64) -> FredConfig {
        FredConfig {
            min_th_bytes: capacity_bytes / 4,
            max_th_bytes: capacity_bytes * 3 / 4,
            max_p: 0.1,
            weight: 0.002,
            min_q_bytes: 1000,
            seed,
        }
    }
}

/// The FRED policy.
#[derive(Debug, Clone)]
pub struct Fred {
    occ: Occupancy,
    cfg: FredConfig,
    avg: f64,
    /// Flows with at least one byte queued (nactive).
    active: usize,
    /// Per-flow strike counters (persistent overrunners).
    strikes: Vec<u32>,
    rng: u64,
}

impl Fred {
    /// Build for `flows` flows over `capacity_bytes`.
    pub fn new(capacity_bytes: u64, flows: usize, cfg: FredConfig) -> Fred {
        assert!(
            cfg.min_th_bytes < cfg.max_th_bytes,
            "min_th must be below max_th"
        );
        assert!(cfg.max_p > 0.0 && cfg.max_p <= 1.0, "max_p in (0,1]");
        Fred {
            occ: Occupancy::new(capacity_bytes, flows),
            cfg,
            avg: 0.0,
            active: 0,
            strikes: vec![0; flows],
            rng: cfg.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Fair per-flow share of the average queue, bytes.
    pub fn avgcq(&self) -> f64 {
        if self.active == 0 {
            self.avg
        } else {
            self.avg / self.active as f64
        }
    }

    fn uniform(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl BufferPolicy for Fred {
    fn admit(&mut self, flow: FlowId, len: u32) -> Verdict {
        self.avg += self.cfg.weight * (self.occ.total() as f64 - self.avg);
        if !self.occ.fits(len) {
            return Verdict::Drop(DropReason::BufferFull);
        }
        let q = self.occ.of(flow);
        // Uncongested (avg below min_th): flows may buffer up to the
        // RED low-water mark each, as in the original algorithm —
        // otherwise the near-zero fair share would prevent any queue
        // from ever forming. Congested: fair share of the average.
        let fair = if self.avg < self.cfg.min_th_bytes as f64 {
            self.cfg.min_th_bytes as f64
        } else {
            self.avgcq().max(self.cfg.min_q_bytes as f64)
        };
        let f = flow.index();
        // Persistent overrunners (strikes) are clamped at the fair
        // share outright — FRED's non-adaptive-flow defense.
        if q as f64 + len as f64 > 2.0 * fair {
            self.strikes[f] = self.strikes[f].saturating_add(1);
            return Verdict::Drop(DropReason::OverThreshold);
        }
        if self.strikes[f] > 1 && q as f64 + len as f64 > fair {
            return Verdict::Drop(DropReason::OverThreshold);
        }
        // RED regime on the average queue, but only for flows already
        // at or above their fair share (min_q-protected otherwise).
        if self.avg >= self.cfg.max_th_bytes as f64 {
            return Verdict::Drop(DropReason::OverThreshold);
        }
        if self.avg > self.cfg.min_th_bytes as f64 && q + len as u64 > self.cfg.min_q_bytes {
            let span = (self.cfg.max_th_bytes - self.cfg.min_th_bytes) as f64;
            let pb = self.cfg.max_p * (self.avg - self.cfg.min_th_bytes as f64) / span;
            if self.uniform() < pb {
                return Verdict::Drop(DropReason::OverThreshold);
            }
        }
        if q == 0 {
            self.active += 1;
        }
        self.occ.charge(flow, len);
        Verdict::Admit
    }

    fn release(&mut self, flow: FlowId, len: u32) {
        self.occ.credit(flow, len);
        if self.occ.of(flow) == 0 {
            self.active -= 1;
            // A flow that drained its backlog earns its strikes back
            // slowly (one per empty episode).
            let f = flow.index();
            self.strikes[f] = self.strikes[f].saturating_sub(1);
        }
    }

    fn flow_occupancy(&self, flow: FlowId) -> u64 {
        self.occ.of(flow)
    }

    fn total_occupancy(&self) -> u64 {
        self.occ.total()
    }

    fn capacity(&self) -> u64 {
        self.occ.capacity()
    }

    fn threshold(&self, _flow: FlowId) -> Option<u64> {
        None
    }

    fn name(&self) -> &'static str {
        "fred"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fred(capacity: u64, flows: usize) -> Fred {
        Fred::new(capacity, flows, FredConfig::recommended(capacity, 5))
    }

    #[test]
    fn fair_share_tracks_active_flows() {
        let mut p = fred(100_000, 4);
        assert_eq!(p.avgcq(), 0.0);
        // Two flows hold queue; EWMA builds; avgcq = avg/2.
        for _ in 0..2000 {
            let _ = p.admit(FlowId(0), 500);
            let _ = p.admit(FlowId(1), 500);
            if p.total_occupancy() > 40_000 {
                p.release(FlowId(0), 500);
                p.release(FlowId(1), 500);
            }
        }
        assert_eq!(p.active, 2);
        assert!(p.avgcq() > 0.0);
        assert!((p.avgcq() - p.avg / 2.0).abs() < 1e-9);
    }

    #[test]
    fn overrunner_is_clamped_at_twice_fair_share() {
        let mut p = fred(100_000, 2);
        // Flow 1 keeps a modest steady backlog to define the fair share.
        for _ in 0..5000 {
            let _ = p.admit(FlowId(1), 500);
            if p.flow_occupancy(FlowId(1)) > 10_000 {
                p.release(FlowId(1), 500);
            }
        }
        // Flow 0 blasts: FRED clamps it at twice the uncongested
        // per-flow cap (2·min_th = 50 KB), well short of the ~90 KB the
        // buffer would physically allow.
        let mut blast = 0u64;
        while p.admit(FlowId(0), 500).admitted() {
            blast += 500;
            assert!(blast < 90_000, "FRED never clamped the blast");
        }
        let q0 = p.flow_occupancy(FlowId(0));
        assert!(
            q0 <= 2 * p.cfg.min_th_bytes + 500,
            "blast occupancy {q0} above 2·min_th"
        );
        // And the stop was a FRED clamp, not buffer exhaustion.
        assert!(p.total_occupancy() + 500 <= p.capacity());
    }

    #[test]
    fn min_q_protects_fragile_flows() {
        let mut p = fred(100_000, 3);
        // Build congestion with flows 0 and 1 (EWMA above min_th).
        for _ in 0..20_000 {
            let _ = p.admit(FlowId(0), 500);
            let _ = p.admit(FlowId(1), 500);
            if p.total_occupancy() > 60_000 {
                p.release(FlowId(0), 500);
                p.release(FlowId(1), 500);
            }
        }
        assert!(p.avg > p.cfg.min_th_bytes as f64, "no congestion built");
        // A fragile flow sending its first small packet is admitted
        // (below min_q, no RED lottery applies).
        assert!(p.admit(FlowId(2), 500).admitted());
    }

    #[test]
    fn strikes_decay_when_flow_drains() {
        let mut p = fred(50_000, 2);
        // Earn a strike.
        while p.admit(FlowId(0), 500).admitted() {}
        assert!(p.strikes[0] > 0);
        let s = p.strikes[0];
        // Drain completely: strike count decremented.
        while p.flow_occupancy(FlowId(0)) > 0 {
            p.release(FlowId(0), 500);
        }
        assert_eq!(p.strikes[0], s - 1);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut p = Fred::new(50_000, 1, FredConfig::recommended(50_000, seed));
            let mut v = Vec::new();
            for _ in 0..3000 {
                v.push(p.admit(FlowId(0), 500).admitted());
                if p.total_occupancy() > 30_000 {
                    p.release(FlowId(0), 500);
                }
            }
            v
        };
        assert_eq!(run(1), run(1));
    }
}
