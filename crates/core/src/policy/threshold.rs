//! Fixed per-flow occupancy thresholds — the paper's §2 scheme.
//!
//! Flow `i` is assigned a threshold
//!
//! ```text
//! Bᵢ = σᵢ + ρᵢ · B / R        (Propositions 1–2)
//! ```
//!
//! and an arriving packet is admitted iff the flow stays within its
//! threshold *and* the buffer has room. When the buffer is larger than
//! the sum of thresholds, all thresholds are scaled up so the buffer is
//! fully partitioned (the paper's footnote 5); this is what lets the
//! scheme keep using buffer space as `B` grows in the Figure 1–3 sweeps.
//!
//! With `B ≥ R·Σσ/(R−Σρ)` (Eq. 9) every conformant flow is lossless; the
//! necessity direction is Example 1 / the note after Proposition 2.

use super::{BufferPolicy, DropReason, Occupancy, Verdict};
use crate::flow::{FlowId, FlowSpec};
use crate::units::Rate;

/// Tuning knobs for [`FixedThreshold`] (mostly for ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThresholdOptions {
    /// Apply the footnote-5 scale-up when `Σ thresholds < B`
    /// (default: true, as in the paper).
    pub scale_up_to_partition: bool,
}

impl Default for ThresholdOptions {
    fn default() -> Self {
        ThresholdOptions {
            scale_up_to_partition: true,
        }
    }
}

/// The §2 fixed-partition policy: per-flow thresholds, O(1) admission.
#[derive(Debug, Clone)]
pub struct FixedThreshold {
    occ: Occupancy,
    /// Per-flow thresholds `Bᵢ`, bytes (post scale-up).
    thresholds: Vec<u64>,
}

impl FixedThreshold {
    /// Compute thresholds for `specs` sharing a `capacity_bytes` buffer
    /// in front of a `link_rate` FIFO link.
    ///
    /// Panics if `link_rate` is zero (a configuration error).
    pub fn new(
        capacity_bytes: u64,
        link_rate: Rate,
        specs: &[FlowSpec],
        opts: ThresholdOptions,
    ) -> FixedThreshold {
        let thresholds = compute_thresholds(capacity_bytes, link_rate, specs, opts);
        FixedThreshold {
            occ: Occupancy::new(capacity_bytes, specs.len()),
            thresholds,
        }
    }

    /// Build with explicitly supplied per-flow thresholds (bytes).
    ///
    /// Used by the §4 hybrid architecture, where flow `j` in queue `i`
    /// gets `σⱼ + ρⱼ·Bᵢ/Rᵢ` computed against its *queue's* buffer share
    /// and service rate rather than the whole link.
    pub fn with_thresholds(capacity_bytes: u64, thresholds: Vec<u64>) -> FixedThreshold {
        FixedThreshold {
            occ: Occupancy::new(capacity_bytes, thresholds.len()),
            thresholds,
        }
    }

    /// The configured per-flow thresholds, bytes.
    pub fn thresholds(&self) -> &[u64] {
        &self.thresholds
    }
}

/// Raw Proposition-2 threshold `σᵢ + ρᵢ·B/R` in (fractional) bytes.
pub fn raw_threshold(capacity_bytes: u64, link_rate: Rate, spec: &FlowSpec) -> f64 {
    assert!(link_rate.bps() > 0, "zero link rate");
    spec.bucket_bytes as f64
        + spec.token_rate.bps() as f64 * capacity_bytes as f64 / link_rate.bps() as f64
}

/// Thresholds for a flow set, with optional footnote-5 scale-up.
/// Public so harnesses can ablate the scale-up rule via
/// [`FixedThreshold::with_thresholds`].
pub fn compute_thresholds(
    capacity_bytes: u64,
    link_rate: Rate,
    specs: &[FlowSpec],
    opts: ThresholdOptions,
) -> Vec<u64> {
    let raw: Vec<f64> = specs
        .iter()
        .map(|s| raw_threshold(capacity_bytes, link_rate, s))
        .collect();
    let sum: f64 = raw.iter().sum();
    let scale = if opts.scale_up_to_partition && sum > 0.0 && sum < capacity_bytes as f64 {
        capacity_bytes as f64 / sum
    } else {
        1.0
    };
    raw.iter().map(|t| (t * scale).round() as u64).collect()
}

impl BufferPolicy for FixedThreshold {
    fn admit(&mut self, flow: FlowId, len: u32) -> Verdict {
        if self.occ.of(flow) + len as u64 > self.thresholds[flow.index()] {
            return Verdict::Drop(DropReason::OverThreshold);
        }
        if !self.occ.fits(len) {
            return Verdict::Drop(DropReason::BufferFull);
        }
        self.occ.charge(flow, len);
        Verdict::Admit
    }

    fn release(&mut self, flow: FlowId, len: u32) {
        self.occ.credit(flow, len);
    }

    fn flow_occupancy(&self, flow: FlowId) -> u64 {
        self.occ.of(flow)
    }

    fn total_occupancy(&self) -> u64 {
        self.occ.total()
    }

    fn capacity(&self) -> u64 {
        self.occ.capacity()
    }

    fn threshold(&self, flow: FlowId) -> Option<u64> {
        Some(self.thresholds[flow.index()])
    }

    fn name(&self) -> &'static str {
        "fixed-threshold"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::ByteSize;

    fn spec(i: u32, rho_mbps: f64, bucket_kib: u64) -> FlowSpec {
        FlowSpec::builder(FlowId(i))
            .token_rate(Rate::from_mbps(rho_mbps))
            .bucket(ByteSize::from_kib(bucket_kib).bytes())
            .build()
    }

    const LINK: Rate = Rate::from_bps(48_000_000);

    #[test]
    fn threshold_formula_matches_proposition_2() {
        // Flow with ρ = 12 Mb/s (a quarter of the link), σ = 100 KiB,
        // B = 1 MiB, no scale-up: threshold = σ + B/4.
        let s = [spec(0, 12.0, 100)];
        let t = compute_thresholds(
            ByteSize::from_mib(1).bytes(),
            LINK,
            &s,
            ThresholdOptions {
                scale_up_to_partition: false,
            },
        );
        let expect: f64 = 102_400.0 + 1_048_576.0 / 4.0;
        assert_eq!(t[0], expect.round() as u64);
    }

    #[test]
    fn footnote5_scale_up_fully_partitions() {
        // Small reservations in a big buffer: Σ raw < B, so thresholds
        // scale so that Σ == B (±1 B rounding per flow).
        let s = [spec(0, 2.0, 50), spec(1, 8.0, 100), spec(2, 0.4, 50)];
        let b = ByteSize::from_mib(4).bytes();
        let t = compute_thresholds(b, LINK, &s, ThresholdOptions::default());
        let sum: u64 = t.iter().sum();
        assert!((sum as i64 - b as i64).unsigned_abs() <= s.len() as u64);
        // And scaling preserved proportions.
        let raw0 = raw_threshold(b, LINK, &s[0]);
        let raw1 = raw_threshold(b, LINK, &s[1]);
        let ratio_raw = raw0 / raw1;
        let ratio_scaled = t[0] as f64 / t[1] as f64;
        assert!((ratio_raw - ratio_scaled).abs() < 1e-3);
    }

    #[test]
    fn no_scale_up_when_thresholds_exceed_buffer() {
        // High utilization + small buffer: Σ raw > B, thresholds kept.
        let s = [spec(0, 20.0, 500), spec(1, 20.0, 500)];
        let b = ByteSize::from_kib(100).bytes();
        let t = compute_thresholds(b, LINK, &s, ThresholdOptions::default());
        let raw: u64 = raw_threshold(b, LINK, &s[0]).round() as u64;
        assert_eq!(t[0], raw);
        assert!(t.iter().sum::<u64>() > b);
    }

    #[test]
    fn isolates_an_aggressive_flow() {
        // Conformant flow 0 keeps its reserved share even when flow 1
        // tries to fill the whole buffer.
        let s = [spec(0, 24.0, 10), spec(1, 2.0, 10)];
        let b = 100_000;
        let mut p = FixedThreshold::new(b, LINK, &s, ThresholdOptions::default());
        let t1 = p.threshold(FlowId(1)).unwrap();
        // Flow 1 stuffs packets until its threshold stops it.
        let mut stuffed = 0u64;
        while p.admit(FlowId(1), 500).admitted() {
            stuffed += 500;
        }
        assert!(stuffed <= t1);
        assert_eq!(
            p.admit(FlowId(1), 500),
            Verdict::Drop(DropReason::OverThreshold)
        );
        // Flow 0 can still get its full threshold in.
        let t0 = p.threshold(FlowId(0)).unwrap();
        let mut got = 0u64;
        while p.admit(FlowId(0), 500).admitted() {
            got += 500;
        }
        assert!(
            got + 500 > t0.min(b - stuffed),
            "flow 0 starved: {got} of {t0}"
        );
    }

    #[test]
    fn drop_leaves_state_unchanged() {
        let s = [spec(0, 2.0, 1)];
        let mut p = FixedThreshold::new(
            10_000,
            LINK,
            &s,
            ThresholdOptions {
                scale_up_to_partition: false,
            },
        );
        let before = p.flow_occupancy(FlowId(0));
        let v = p.admit(FlowId(0), 50_000);
        assert!(!v.admitted());
        assert_eq!(p.flow_occupancy(FlowId(0)), before);
        assert_eq!(p.total_occupancy(), 0);
    }

    #[test]
    fn buffer_full_beats_threshold_when_oversubscribed() {
        // Two flows whose thresholds together exceed B: the second flow
        // is under threshold but the buffer is full.
        let s = [spec(0, 20.0, 500), spec(1, 20.0, 500)];
        let b = 100_000;
        let mut p = FixedThreshold::new(b, LINK, &s, ThresholdOptions::default());
        while p.admit(FlowId(0), 500).admitted() {}
        // Flow 0 stopped by BufferFull (its threshold > B here).
        assert_eq!(p.total_occupancy(), b);
        assert_eq!(
            p.admit(FlowId(1), 500),
            Verdict::Drop(DropReason::BufferFull)
        );
    }

    #[test]
    fn release_reopens_threshold_room() {
        let s = [spec(0, 2.0, 1)];
        let mut p = FixedThreshold::new(
            100_000,
            LINK,
            &s,
            ThresholdOptions {
                scale_up_to_partition: false,
            },
        );
        let t = p.threshold(FlowId(0)).unwrap();
        let n_fit = t / 500;
        for _ in 0..n_fit {
            assert!(p.admit(FlowId(0), 500).admitted());
        }
        assert!(!p.admit(FlowId(0), 500).admitted());
        p.release(FlowId(0), 500);
        assert!(p.admit(FlowId(0), 500).admitted());
    }
}
