//! Packet admission policies — the paper's contribution.
//!
//! Every policy implements [`BufferPolicy`]: an **O(1)** per-packet
//! `admit`/`release` pair over a shared buffer of `B` bytes. This is the
//! whole point of the paper — the decision uses only the arriving
//! packet's flow state plus a constant amount of global state, never a
//! sorted structure over all flows.
//!
//! | Policy | Paper section | Behaviour |
//! |---|---|---|
//! | [`SharedBuffer`] | §3.1 baseline | admit while the buffer has room |
//! | [`FixedThreshold`] | §2, §3.2 | per-flow cap `σᵢ + ρᵢ·B/R` (Props. 1–2) |
//! | [`BufferSharing`] | §3.3 | thresholds + *holes*/*headroom* sharing |
//! | [`AdaptiveSharing`] | §5 (future work) | sharing restricted to adaptive flows |

mod dynamic;
mod fred;
mod none;
mod protective;
mod red;
mod sharing;
mod threshold;

pub use dynamic::DynamicThreshold;
pub use fred::{Fred, FredConfig};
pub use none::SharedBuffer;
pub use protective::PartialBufferSharing;
pub use red::{Red, RedConfig};
pub use sharing::{AdaptiveSharing, BufferSharing};
pub use threshold::{compute_thresholds, raw_threshold, FixedThreshold, ThresholdOptions};

use crate::flow::{FlowId, FlowSpec};
use crate::units::Rate;

/// Outcome of an admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Packet accepted; the policy has charged its occupancy.
    Admit,
    /// Packet dropped; state unchanged.
    Drop(DropReason),
}

impl Verdict {
    /// True iff the packet was admitted.
    pub fn admitted(self) -> bool {
        matches!(self, Verdict::Admit)
    }
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DropReason {
    /// No free space in the buffer at all.
    BufferFull,
    /// The flow would exceed its fixed threshold (partitioned schemes).
    OverThreshold,
    /// The flow is over its reserved share and the *holes* pool cannot
    /// cover the excess (sharing schemes).
    NoSharedSpace,
}

/// A buffer-management policy: constant-work per-packet admission.
///
/// Contract:
/// * `admit` either charges `len` bytes to `flow` and returns
///   [`Verdict::Admit`], or leaves all state untouched and returns a
///   [`Verdict::Drop`];
/// * every admitted packet is eventually `release`d exactly once with
///   the same `(flow, len)`;
/// * `total_occupancy() ≤ capacity()` always holds.
pub trait BufferPolicy: Send {
    /// Decide an arriving packet of `len` bytes from `flow`.
    fn admit(&mut self, flow: FlowId, len: u32) -> Verdict;

    /// Account a departing (transmitted) packet.
    fn release(&mut self, flow: FlowId, len: u32);

    /// Bytes currently charged to `flow`.
    fn flow_occupancy(&self, flow: FlowId) -> u64;

    /// Bytes currently charged in total.
    fn total_occupancy(&self) -> u64;

    /// Total buffer size `B` in bytes.
    fn capacity(&self) -> u64;

    /// The flow's configured threshold / reserved share, if the policy
    /// has one (None for [`SharedBuffer`]).
    fn threshold(&self, flow: FlowId) -> Option<u64>;

    /// Short policy name for reports ("fifo-thresh" etc. are composed
    /// one level up from this plus the scheduler name).
    fn name(&self) -> &'static str;

    /// The §3.3 sharing pools `(holes, headroom)` in bytes, for
    /// policies that maintain them (None otherwise). Observability
    /// hook: the simulator samples this to emit hole/headroom
    /// transition records without knowing the concrete policy.
    fn sharing_state(&self) -> Option<(u64, u64)> {
        None
    }
}

/// Boxed policies forward to their contents, so both `Box<dyn
/// BufferPolicy>` (existing call sites) and `Box<Concrete>` satisfy the
/// `P: BufferPolicy` bound of the monomorphized simulator.
impl<P: BufferPolicy + ?Sized> BufferPolicy for Box<P> {
    fn admit(&mut self, flow: FlowId, len: u32) -> Verdict {
        (**self).admit(flow, len)
    }

    fn release(&mut self, flow: FlowId, len: u32) {
        (**self).release(flow, len)
    }

    fn flow_occupancy(&self, flow: FlowId) -> u64 {
        (**self).flow_occupancy(flow)
    }

    fn total_occupancy(&self) -> u64 {
        (**self).total_occupancy()
    }

    fn capacity(&self) -> u64 {
        (**self).capacity()
    }

    fn threshold(&self, flow: FlowId) -> Option<u64> {
        (**self).threshold(flow)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn sharing_state(&self) -> Option<(u64, u64)> {
        (**self).sharing_state()
    }
}

/// Declarative policy selector used by experiment configurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// No management: shared buffer, drop-on-full.
    None,
    /// Fixed per-flow thresholds (footnote-5 scale-up enabled).
    Threshold,
    /// §3.3 buffer sharing with the given headroom `H` in bytes.
    Sharing {
        /// Maximum headroom `H`, bytes.
        headroom_bytes: u64,
    },
    /// §5 adaptive-only sharing with the given headroom.
    AdaptiveSharing {
        /// Maximum headroom `H`, bytes.
        headroom_bytes: u64,
    },
    /// Choudhury–Hahne dynamic threshold `α·(B−Q)` (comparator, \[1\]).
    DynamicThreshold {
        /// α numerator.
        alpha_num: u64,
        /// α denominator.
        alpha_den: u64,
    },
    /// Random Early Detection with Floyd's recommended parameters
    /// (comparator, \[3\]); the seed fixes the drop lottery.
    Red {
        /// Drop-lottery seed.
        seed: u64,
    },
    /// Flow RED with recommended parameters (comparator, \[5\]).
    Fred {
        /// Drop-lottery seed.
        seed: u64,
    },
    /// Protective partial buffer sharing with congestion threshold at
    /// the given fraction of B (comparator, the paper's reference \[2\]).
    PartialSharing {
        /// Congestion threshold as a per-mille fraction of B (e.g. 800
        /// = 0.8·B; integer so the enum stays `Eq`/hashable).
        threshold_permille: u16,
    },
}

impl PolicyKind {
    /// Instantiate the policy for a concrete link/buffer/flow-set.
    pub fn build(
        self,
        capacity_bytes: u64,
        link_rate: Rate,
        specs: &[FlowSpec],
    ) -> Box<dyn BufferPolicy> {
        match self {
            PolicyKind::None => Box::new(SharedBuffer::new(capacity_bytes, specs.len())),
            PolicyKind::Threshold => Box::new(FixedThreshold::new(
                capacity_bytes,
                link_rate,
                specs,
                ThresholdOptions::default(),
            )),
            PolicyKind::Sharing { headroom_bytes } => Box::new(BufferSharing::new(
                capacity_bytes,
                link_rate,
                specs,
                headroom_bytes,
            )),
            PolicyKind::AdaptiveSharing { headroom_bytes } => Box::new(AdaptiveSharing::new(
                capacity_bytes,
                link_rate,
                specs,
                headroom_bytes,
            )),
            PolicyKind::DynamicThreshold {
                alpha_num,
                alpha_den,
            } => Box::new(DynamicThreshold::new(
                capacity_bytes,
                specs.len(),
                alpha_num,
                alpha_den,
            )),
            PolicyKind::Red { seed } => Box::new(Red::new(
                capacity_bytes,
                specs.len(),
                RedConfig::recommended(capacity_bytes, seed),
            )),
            PolicyKind::Fred { seed } => Box::new(Fred::new(
                capacity_bytes,
                specs.len(),
                FredConfig::recommended(capacity_bytes, seed),
            )),
            PolicyKind::PartialSharing { threshold_permille } => {
                Box::new(PartialBufferSharing::new(
                    capacity_bytes,
                    link_rate,
                    specs,
                    // qbm-lint: allow(float-cast) — permille knob unpacked once at build time
                    threshold_permille as f64 / 1000.0,
                ))
            }
        }
    }

    /// Short label used in figure legends.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::None => "no-mgmt",
            PolicyKind::Threshold => "thresh",
            PolicyKind::Sharing { .. } => "sharing",
            PolicyKind::AdaptiveSharing { .. } => "adaptive",
            PolicyKind::DynamicThreshold { .. } => "dyn-thresh",
            PolicyKind::Red { .. } => "red",
            PolicyKind::Fred { .. } => "fred",
            PolicyKind::PartialSharing { .. } => "pbs",
        }
    }
}

/// Shared per-flow occupancy bookkeeping used by every policy.
///
/// Maintains `total == Σ per_flow` (checked in debug builds) and
/// `total ≤ capacity`.
#[derive(Debug, Clone)]
pub(crate) struct Occupancy {
    per_flow: Vec<u64>,
    total: u64,
    capacity: u64,
}

impl Occupancy {
    pub(crate) fn new(capacity: u64, flows: usize) -> Occupancy {
        Occupancy {
            per_flow: vec![0; flows],
            total: 0,
            capacity,
        }
    }

    #[inline]
    pub(crate) fn fits(&self, len: u32) -> bool {
        self.total + len as u64 <= self.capacity
    }

    #[inline]
    pub(crate) fn charge(&mut self, flow: FlowId, len: u32) {
        self.per_flow[flow.index()] += len as u64;
        self.total += len as u64;
        debug_assert!(self.total <= self.capacity, "occupancy above capacity");
    }

    #[inline]
    pub(crate) fn credit(&mut self, flow: FlowId, len: u32) {
        let q = &mut self.per_flow[flow.index()];
        assert!(
            *q >= len as u64,
            "release of {len} B from {flow} holding {q} B"
        );
        *q -= len as u64;
        self.total -= len as u64;
    }

    #[inline]
    pub(crate) fn of(&self, flow: FlowId) -> u64 {
        self.per_flow[flow.index()]
    }

    #[inline]
    pub(crate) fn total(&self) -> u64 {
        self.total
    }

    #[inline]
    pub(crate) fn capacity(&self) -> u64 {
        self.capacity
    }

    #[cfg(test)]
    pub(crate) fn check_invariants(&self) {
        assert_eq!(self.per_flow.iter().sum::<u64>(), self.total);
        assert!(self.total <= self.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowSpec;

    fn spec(i: u32, rho_mbps: f64, bucket: u64) -> FlowSpec {
        FlowSpec::builder(FlowId(i))
            .token_rate(Rate::from_mbps(rho_mbps))
            .bucket(bucket)
            .build()
    }

    #[test]
    fn kind_builds_matching_policy() {
        let specs = vec![spec(0, 2.0, 50_000), spec(1, 8.0, 100_000)];
        let link = Rate::from_mbps(48.0);
        for (kind, name) in [
            (PolicyKind::None, "shared-buffer"),
            (PolicyKind::Threshold, "fixed-threshold"),
            (
                PolicyKind::Sharing {
                    headroom_bytes: 10_000,
                },
                "buffer-sharing",
            ),
            (
                PolicyKind::AdaptiveSharing {
                    headroom_bytes: 10_000,
                },
                "adaptive-sharing",
            ),
        ] {
            let p = kind.build(1_000_000, link, &specs);
            assert_eq!(p.name(), name);
            assert_eq!(p.capacity(), 1_000_000);
            assert_eq!(p.total_occupancy(), 0);
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PolicyKind::None.label(), "no-mgmt");
        assert_eq!(PolicyKind::Threshold.label(), "thresh");
        assert_eq!(PolicyKind::Sharing { headroom_bytes: 1 }.label(), "sharing");
    }

    #[test]
    fn occupancy_bookkeeping() {
        let mut o = Occupancy::new(1000, 2);
        assert!(o.fits(1000));
        assert!(!o.fits(1001));
        o.charge(FlowId(0), 600);
        o.charge(FlowId(1), 400);
        o.check_invariants();
        assert_eq!(o.of(FlowId(0)), 600);
        assert_eq!(o.total(), 1000);
        assert!(!o.fits(1));
        o.credit(FlowId(0), 600);
        assert_eq!(o.total(), 400);
        o.check_invariants();
    }

    #[test]
    #[should_panic(expected = "release")]
    fn over_credit_panics() {
        let mut o = Occupancy::new(1000, 1);
        o.charge(FlowId(0), 100);
        o.credit(FlowId(0), 101);
    }
}
