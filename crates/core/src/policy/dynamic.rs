//! Dynamic Threshold (Choudhury–Hahne) — the shared-memory scheme the
//! paper's §3.3 buffer sharing is explicitly compared against \[1\].
//!
//! Every flow shares one *dynamic* threshold `T(t) = α·(B − Q(t))`
//! proportional to the instantaneous free space: as the buffer fills,
//! everyone's allowance shrinks, which is self-stabilizing. Unlike the
//! paper's scheme it carries **no reservations** — all flows get the
//! same cap — so it shares well but cannot enforce per-flow rate
//! guarantees (which is exactly the gap §3.3's headroom/holes variant
//! closes). Included as a comparator policy for the extension benches.

use super::{BufferPolicy, DropReason, Occupancy, Verdict};
use crate::flow::FlowId;

/// Choudhury–Hahne dynamic-threshold buffer sharing.
#[derive(Debug, Clone)]
pub struct DynamicThreshold {
    occ: Occupancy,
    /// Numerator of the α multiplier (α = `alpha_num / alpha_den`).
    alpha_num: u64,
    /// Denominator of the α multiplier.
    alpha_den: u64,
}

impl DynamicThreshold {
    /// A dynamic-threshold buffer of `capacity_bytes` for `flows` flows
    /// with multiplier `α = alpha_num/alpha_den` (the classic choices
    /// are 1 and 2; fractional α down-prioritizes everyone equally).
    pub fn new(capacity_bytes: u64, flows: usize, alpha_num: u64, alpha_den: u64) -> Self {
        assert!(alpha_num > 0 && alpha_den > 0, "alpha must be positive");
        DynamicThreshold {
            occ: Occupancy::new(capacity_bytes, flows),
            alpha_num,
            alpha_den,
        }
    }

    /// The instantaneous threshold `α·(B − Q)` in bytes.
    pub fn current_threshold(&self) -> u64 {
        let free = self.occ.capacity() - self.occ.total();
        (free as u128 * self.alpha_num as u128 / self.alpha_den as u128) as u64
    }
}

impl BufferPolicy for DynamicThreshold {
    fn admit(&mut self, flow: FlowId, len: u32) -> Verdict {
        if !self.occ.fits(len) {
            return Verdict::Drop(DropReason::BufferFull);
        }
        // Classic DT: accept iff the flow's occupancy is below the
        // dynamic threshold at arrival.
        if self.occ.of(flow) + len as u64 > self.current_threshold() {
            return Verdict::Drop(DropReason::OverThreshold);
        }
        self.occ.charge(flow, len);
        Verdict::Admit
    }

    fn release(&mut self, flow: FlowId, len: u32) {
        self.occ.credit(flow, len);
    }

    fn flow_occupancy(&self, flow: FlowId) -> u64 {
        self.occ.of(flow)
    }

    fn total_occupancy(&self) -> u64 {
        self.occ.total()
    }

    fn capacity(&self) -> u64 {
        self.occ.capacity()
    }

    fn threshold(&self, _flow: FlowId) -> Option<u64> {
        Some(self.current_threshold())
    }

    fn name(&self) -> &'static str {
        "dynamic-threshold"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_shrinks_as_buffer_fills() {
        let mut p = DynamicThreshold::new(100_000, 2, 1, 1);
        assert_eq!(p.current_threshold(), 100_000);
        // One flow grabs space; the threshold drops with the free pool.
        for _ in 0..40 {
            assert!(p.admit(FlowId(0), 1000).admitted());
        }
        assert_eq!(p.current_threshold(), 60_000);
    }

    #[test]
    fn single_flow_converges_to_alpha_fraction() {
        // With α = 1, one greedy flow stabilizes at q = B − q ⟹ B/2.
        let mut p = DynamicThreshold::new(100_000, 1, 1, 1);
        while p.admit(FlowId(0), 500).admitted() {}
        let q = p.flow_occupancy(FlowId(0));
        assert!((q as i64 - 50_000).abs() <= 500, "q = {q}");
        // With α = 2 it stabilizes at 2(B − q) ⟹ 2B/3.
        let mut p = DynamicThreshold::new(99_999, 1, 2, 1);
        while p.admit(FlowId(0), 500).admitted() {}
        let q = p.flow_occupancy(FlowId(0));
        assert!((q as f64 - 66_666.0).abs() <= 600.0, "q = {q}");
    }

    #[test]
    fn latecomer_still_gets_space() {
        // DT's key property vs a plain shared buffer: the first flow
        // cannot capture everything, so a latecomer finds room.
        let mut p = DynamicThreshold::new(100_000, 2, 1, 1);
        while p.admit(FlowId(0), 500).admitted() {}
        assert!(
            p.admit(FlowId(1), 500).admitted(),
            "latecomer locked out: free = {}",
            p.capacity() - p.total_occupancy()
        );
    }

    #[test]
    fn no_reservations_all_flows_equal() {
        // Two greedy flows end up with equal occupancies — DT cannot
        // express the paper's per-flow guarantees.
        let mut p = DynamicThreshold::new(120_000, 2, 1, 1);
        let mut turn = 0;
        loop {
            let f = FlowId(turn % 2);
            turn += 1;
            if !p.admit(f, 500).admitted() {
                // try the other; stop when both blocked
                let g = FlowId(turn % 2);
                if !p.admit(g, 500).admitted() {
                    break;
                }
            }
        }
        let q0 = p.flow_occupancy(FlowId(0));
        let q1 = p.flow_occupancy(FlowId(1));
        assert!((q0 as i64 - q1 as i64).abs() <= 1000, "{q0} vs {q1}");
    }

    #[test]
    fn release_restores_headroom() {
        let mut p = DynamicThreshold::new(10_000, 1, 1, 1);
        while p.admit(FlowId(0), 500).admitted() {}
        let before = p.flow_occupancy(FlowId(0));
        p.release(FlowId(0), 500);
        p.release(FlowId(0), 500);
        // Freed space raises the threshold enough to admit again.
        assert!(p.admit(FlowId(0), 500).admitted());
        assert!(p.flow_occupancy(FlowId(0)) <= before);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_rejected() {
        let _ = DynamicThreshold::new(1000, 1, 0, 1);
    }
}
