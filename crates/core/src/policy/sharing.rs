//! Buffer sharing with *holes* and *headroom* — the paper's §3.3 scheme.
//!
//! Reserved shares are computed exactly as in the fixed-partition case
//! (`σᵢ + ρᵢ·B/R`, footnote-5 scaled), but free space is now usable by
//! everybody under a two-pool accounting of the free bytes:
//!
//! * **headroom** `h ≤ H` — free space reserved for flows *below* their
//!   threshold (protects rate guarantees);
//! * **holes** `v` — the remaining free space, shareable by flows
//!   *above* their threshold.
//!
//! Invariant maintained at every instant: `h + v = B − Q` where `Q` is
//! the total occupancy.
//!
//! Admission (paper text, §3.3):
//! * a *below-threshold* packet takes from the holes first, then from
//!   the headroom; it is dropped only when the buffer is truly full;
//! * an *above-threshold* packet is accepted only from the holes, and
//!   only if the flow's excess over its reserved share is smaller than
//!   the holes that remain — the Choudhury–Hahne style self-limiting
//!   rule that shrinks everyone's grabbing ability as free space runs
//!   out;
//! * on departure, freed space first refills the headroom up to `H`,
//!   and only the overflow becomes holes again:
//!   `h += len; v += max(h − H, 0); h = min(h, H)`.

use super::threshold::{compute_thresholds, ThresholdOptions};
use super::{BufferPolicy, DropReason, Occupancy, Verdict};
use crate::flow::{FlowId, FlowSpec};
use crate::units::Rate;

/// The §3.3 holes/headroom buffer-sharing policy.
#[derive(Debug, Clone)]
pub struct BufferSharing {
    occ: Occupancy,
    /// Per-flow reserved shares (same formula as [`super::FixedThreshold`]).
    reserved: Vec<u64>,
    /// Current headroom `h`, bytes.
    headroom: u64,
    /// Current holes `v`, bytes.
    holes: u64,
    /// Maximum headroom `H`, bytes.
    headroom_max: u64,
}

impl BufferSharing {
    /// Build the policy for `specs` sharing `capacity_bytes` in front of
    /// a `link_rate` link, with maximum headroom `headroom_bytes` (the
    /// paper sweeps this in Figure 7; §3.3 uses H = 2 MBytes).
    pub fn new(
        capacity_bytes: u64,
        link_rate: Rate,
        specs: &[FlowSpec],
        headroom_bytes: u64,
    ) -> BufferSharing {
        let reserved = compute_thresholds(
            capacity_bytes,
            link_rate,
            specs,
            ThresholdOptions::default(),
        );
        let headroom = headroom_bytes.min(capacity_bytes);
        BufferSharing {
            occ: Occupancy::new(capacity_bytes, specs.len()),
            reserved,
            headroom,
            holes: capacity_bytes - headroom,
            headroom_max: headroom_bytes,
        }
    }

    /// Build with explicitly supplied per-flow reserved shares (bytes)
    /// — the §4 hybrid computes them per queue instead of per link.
    pub fn with_reserved(
        capacity_bytes: u64,
        reserved: Vec<u64>,
        headroom_bytes: u64,
    ) -> BufferSharing {
        let headroom = headroom_bytes.min(capacity_bytes);
        BufferSharing {
            occ: Occupancy::new(capacity_bytes, reserved.len()),
            reserved,
            headroom,
            holes: capacity_bytes - headroom,
            headroom_max: headroom_bytes,
        }
    }

    /// Current holes `v` (shareable free bytes).
    pub fn holes(&self) -> u64 {
        self.holes
    }

    /// Current headroom `h` (protected free bytes).
    pub fn headroom(&self) -> u64 {
        self.headroom
    }

    /// Configured maximum headroom `H`.
    pub fn headroom_max(&self) -> u64 {
        self.headroom_max
    }

    /// The free-space split invariant `h + v = B − Q`.
    #[cfg(test)]
    fn check_invariants(&self) {
        self.occ.check_invariants();
        assert_eq!(
            self.headroom + self.holes,
            self.occ.capacity() - self.occ.total(),
            "free-space split broken"
        );
        assert!(self.headroom <= self.headroom_max.min(self.occ.capacity()));
    }

    /// Debug-build conservation check: the free-space split
    /// `h + v = B − Q` (equivalently holes + headroom + allocated = B)
    /// and the headroom cap. Run on every admit/release so the sharing
    /// path cannot silently leak buffer.
    #[inline]
    fn debug_check_split(&self) {
        debug_assert_eq!(
            self.headroom + self.holes,
            self.occ.capacity() - self.occ.total(),
            "free-space split broken: h + v != B - Q"
        );
        debug_assert!(
            self.headroom <= self.headroom_max.min(self.occ.capacity()),
            "headroom above its cap"
        );
    }

    fn admit_inner(&mut self, flow: FlowId, len: u32, may_share: bool) -> Verdict {
        let verdict = self.admit_decide(flow, len, may_share);
        self.debug_check_split();
        verdict
    }

    fn admit_decide(&mut self, flow: FlowId, len: u32, may_share: bool) -> Verdict {
        let len64 = len as u64;
        let q = self.occ.of(flow);
        let reserved = self.reserved[flow.index()];
        if q + len64 <= reserved {
            // Below threshold: holes first, then headroom.
            let from_holes = self.holes.min(len64);
            let rem = len64 - from_holes;
            if rem <= self.headroom {
                self.holes -= from_holes;
                self.headroom -= rem;
                self.occ.charge(flow, len);
                Verdict::Admit
            } else {
                Verdict::Drop(DropReason::BufferFull)
            }
        } else {
            // Above threshold: holes only, excess-limited.
            if !may_share {
                return Verdict::Drop(DropReason::OverThreshold);
            }
            let excess = q.saturating_sub(reserved);
            if len64 <= self.holes && excess + len64 <= self.holes {
                self.holes -= len64;
                self.occ.charge(flow, len);
                Verdict::Admit
            } else {
                Verdict::Drop(DropReason::NoSharedSpace)
            }
        }
    }

    fn release_inner(&mut self, flow: FlowId, len: u32) {
        self.occ.credit(flow, len);
        // Paper's departure pseudocode, verbatim.
        self.headroom += len as u64;
        self.holes += self.headroom.saturating_sub(self.headroom_max);
        self.headroom = self.headroom.min(self.headroom_max);
        self.debug_check_split();
    }
}

impl BufferPolicy for BufferSharing {
    fn admit(&mut self, flow: FlowId, len: u32) -> Verdict {
        self.admit_inner(flow, len, true)
    }

    fn release(&mut self, flow: FlowId, len: u32) {
        self.release_inner(flow, len);
    }

    fn flow_occupancy(&self, flow: FlowId) -> u64 {
        self.occ.of(flow)
    }

    fn total_occupancy(&self) -> u64 {
        self.occ.total()
    }

    fn capacity(&self) -> u64 {
        self.occ.capacity()
    }

    fn threshold(&self, flow: FlowId) -> Option<u64> {
        Some(self.reserved[flow.index()])
    }

    fn name(&self) -> &'static str {
        "buffer-sharing"
    }

    fn sharing_state(&self) -> Option<(u64, u64)> {
        Some((self.holes, self.headroom))
    }
}

/// §5 future-work variant: only flows marked `adaptive` may borrow from
/// the holes when above threshold; non-adaptive flows behave as under
/// [`super::FixedThreshold`]. This gives adaptive (congestion-reactive)
/// traffic access to idle bandwidth without letting non-adaptive blasts
/// capture it.
#[derive(Debug, Clone)]
pub struct AdaptiveSharing {
    inner: BufferSharing,
    adaptive: Vec<bool>,
}

impl AdaptiveSharing {
    /// Same configuration as [`BufferSharing::new`]; the adaptive mask
    /// comes from [`FlowSpec::adaptive`].
    pub fn new(
        capacity_bytes: u64,
        link_rate: Rate,
        specs: &[FlowSpec],
        headroom_bytes: u64,
    ) -> AdaptiveSharing {
        AdaptiveSharing {
            inner: BufferSharing::new(capacity_bytes, link_rate, specs, headroom_bytes),
            adaptive: specs.iter().map(|s| s.adaptive).collect(),
        }
    }
}

impl BufferPolicy for AdaptiveSharing {
    fn admit(&mut self, flow: FlowId, len: u32) -> Verdict {
        let may_share = self.adaptive[flow.index()];
        self.inner.admit_inner(flow, len, may_share)
    }

    fn release(&mut self, flow: FlowId, len: u32) {
        self.inner.release_inner(flow, len);
    }

    fn flow_occupancy(&self, flow: FlowId) -> u64 {
        self.inner.flow_occupancy(flow)
    }

    fn total_occupancy(&self) -> u64 {
        self.inner.total_occupancy()
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    fn threshold(&self, flow: FlowId) -> Option<u64> {
        self.inner.threshold(flow)
    }

    fn name(&self) -> &'static str {
        "adaptive-sharing"
    }

    fn sharing_state(&self) -> Option<(u64, u64)> {
        self.inner.sharing_state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::ByteSize;
    use proptest::prelude::*;

    const LINK: Rate = Rate::from_bps(48_000_000);

    fn spec(i: u32, rho_mbps: f64, bucket_kib: u64, adaptive: bool) -> FlowSpec {
        FlowSpec::builder(FlowId(i))
            .token_rate(Rate::from_mbps(rho_mbps))
            .bucket(ByteSize::from_kib(bucket_kib).bytes())
            .adaptive(adaptive)
            .build()
    }

    fn two_flows() -> Vec<FlowSpec> {
        vec![spec(0, 2.0, 10, false), spec(1, 2.0, 10, true)]
    }

    #[test]
    fn initial_split_honours_headroom_cap() {
        let p = BufferSharing::new(100_000, LINK, &two_flows(), 30_000);
        assert_eq!(p.headroom(), 30_000);
        assert_eq!(p.holes(), 70_000);
        // H larger than B: all free space is headroom.
        let p2 = BufferSharing::new(100_000, LINK, &two_flows(), 1 << 30);
        assert_eq!(p2.headroom(), 100_000);
        assert_eq!(p2.holes(), 0);
    }

    #[test]
    fn over_threshold_flow_can_borrow_holes() {
        // Unlike FixedThreshold, a bursty flow may exceed its reserved
        // share while holes remain.
        let specs = two_flows();
        let mut p = BufferSharing::new(100_000, LINK, &specs, 10_000);
        let reserved = p.threshold(FlowId(0)).unwrap();
        let mut got = 0u64;
        while p.admit(FlowId(0), 500).admitted() {
            got += 500;
        }
        assert!(got > reserved, "no sharing happened: {got} <= {reserved}");
        p.check_invariants();
    }

    #[test]
    fn excess_is_limited_by_remaining_holes() {
        // The self-limiting rule: once excess ≈ holes, further
        // over-threshold packets are refused even though holes remain.
        let specs = two_flows();
        let mut p = BufferSharing::new(100_000, LINK, &specs, 10_000);
        while p.admit(FlowId(0), 500).admitted() {}
        let reserved = p.threshold(FlowId(0)).unwrap();
        let excess = p.flow_occupancy(FlowId(0)).saturating_sub(reserved);
        // It stopped with holes still available but excess + len > holes.
        assert!(excess <= 100_000 - reserved);
        assert!(excess + 500 > p.holes() || 500 > p.holes());
        assert_eq!(
            p.admit(FlowId(0), 500),
            Verdict::Drop(DropReason::NoSharedSpace)
        );
        p.check_invariants();
    }

    #[test]
    fn headroom_protects_below_threshold_flows() {
        // Flow 0 grabs all the holes; flow 1 (below threshold) can still
        // get in through the headroom.
        let specs = two_flows();
        let mut p = BufferSharing::new(100_000, LINK, &specs, 20_000);
        while p.admit(FlowId(0), 500).admitted() {}
        assert!(p.headroom() > 0, "headroom consumed by over-threshold flow");
        assert!(
            p.admit(FlowId(1), 500).admitted(),
            "below-threshold flow locked out despite headroom"
        );
        p.check_invariants();
    }

    #[test]
    fn departure_refills_headroom_before_holes() {
        let specs = two_flows();
        let mut p = BufferSharing::new(100_000, LINK, &specs, 20_000);
        // Fill the buffer completely via both flows.
        while p.admit(FlowId(0), 500).admitted() {}
        while p.admit(FlowId(1), 500).admitted() {}
        let h_before = p.headroom();
        assert!(h_before < 20_000);
        let holes_before = p.holes();
        // One departure: all 500 B go to headroom (it is below H).
        p.release(FlowId(0), 500);
        assert_eq!(p.headroom(), h_before + 500);
        assert_eq!(p.holes(), holes_before);
        p.check_invariants();
        // Once headroom is saturated, departures become holes.
        for _ in 0..200 {
            p.release(FlowId(0), 500);
            p.check_invariants();
            if p.headroom() == 20_000 {
                break;
            }
        }
        assert_eq!(p.headroom(), 20_000);
        let holes_mid = p.holes();
        p.release(FlowId(1), 500);
        assert_eq!(p.holes(), holes_mid + 500);
        assert_eq!(p.headroom(), 20_000);
        p.check_invariants();
    }

    #[test]
    fn zero_headroom_degenerates_to_pure_sharing() {
        let specs = two_flows();
        let mut p = BufferSharing::new(50_000, LINK, &specs, 0);
        assert_eq!(p.headroom(), 0);
        assert_eq!(p.holes(), 50_000);
        while p.admit(FlowId(0), 500).admitted() {}
        p.release(FlowId(0), 500);
        assert_eq!(p.headroom(), 0); // H = 0: frees go straight to holes
        p.check_invariants();
    }

    #[test]
    fn adaptive_variant_blocks_nonadaptive_excess() {
        // Probe each flow against a fresh, otherwise idle buffer: the
        // non-adaptive flow must stop at its threshold while the
        // adaptive one may keep borrowing from the holes. (Note the
        // footnote-5 scale-up makes thresholds tile the buffer, so the
        // holes available for borrowing are the other flow's unused
        // reserved share.)
        let specs = two_flows(); // flow 0 non-adaptive, flow 1 adaptive
        let mut p = AdaptiveSharing::new(200_000, LINK, &specs, 10_000);
        let r0 = p.threshold(FlowId(0)).unwrap();
        while p.admit(FlowId(0), 500).admitted() {}
        assert!(
            p.flow_occupancy(FlowId(0)) <= r0,
            "non-adaptive flow borrowed"
        );
        let last = p.admit(FlowId(0), 500);
        assert_eq!(last, Verdict::Drop(DropReason::OverThreshold));

        let mut p = AdaptiveSharing::new(200_000, LINK, &specs, 10_000);
        let r1 = p.threshold(FlowId(1)).unwrap();
        while p.admit(FlowId(1), 500).admitted() {}
        assert!(
            p.flow_occupancy(FlowId(1)) > r1,
            "adaptive flow never borrowed"
        );
        assert_eq!(
            p.admit(FlowId(1), 500),
            Verdict::Drop(DropReason::NoSharedSpace)
        );
    }

    proptest! {
        /// Random admit/release interleavings never break the free-space
        /// split, never overflow the buffer, and never corrupt per-flow
        /// accounting.
        #[test]
        fn sharing_invariants_hold_under_random_workload(
            ops in proptest::collection::vec((0u32..4, 1u32..2000), 1..400),
            headroom in 0u64..150_000,
        ) {
            let specs = vec![
                spec(0, 2.0, 10, false),
                spec(1, 8.0, 20, true),
                spec(2, 0.4, 5, false),
                spec(3, 16.0, 50, true),
            ];
            let mut p = BufferSharing::new(100_000, LINK, &specs, headroom);
            // Track in-buffer packets so releases are always legal.
            let mut inflight: Vec<Vec<u32>> = vec![Vec::new(); 4];
            for (f, len) in ops {
                let flow = FlowId(f);
                // Alternate: try admit; if a packet is queued, release
                // the oldest half the time (driven by len parity).
                if len % 2 == 0 || inflight[f as usize].is_empty() {
                    if p.admit(flow, len).admitted() {
                        inflight[f as usize].push(len);
                    }
                } else {
                    let l = inflight[f as usize].remove(0);
                    p.release(flow, l);
                }
                p.check_invariants();
                prop_assert!(p.total_occupancy() <= p.capacity());
            }
        }

        /// The same workload through AdaptiveSharing keeps non-adaptive
        /// flows at or below their reserved share.
        #[test]
        fn adaptive_never_lets_nonadaptive_exceed_reserved(
            ops in proptest::collection::vec((0u32..2, 1u32..2000), 1..300),
        ) {
            let specs = vec![spec(0, 2.0, 10, false), spec(1, 8.0, 20, true)];
            let mut p = AdaptiveSharing::new(100_000, LINK, &specs, 5_000);
            let r0 = p.threshold(FlowId(0)).unwrap();
            let mut inflight: Vec<Vec<u32>> = vec![Vec::new(); 2];
            for (f, len) in ops {
                let flow = FlowId(f);
                if len % 2 == 0 || inflight[f as usize].is_empty() {
                    if p.admit(flow, len).admitted() {
                        inflight[f as usize].push(len);
                    }
                } else {
                    let l = inflight[f as usize].remove(0);
                    p.release(flow, l);
                }
                prop_assert!(p.flow_occupancy(FlowId(0)) <= r0);
            }
        }
    }
}
