//! The no-management baseline: a fully shared buffer.
//!
//! Admit while there is room, drop when full — the behaviour of a
//! best-effort router and the paper's first benchmark (§3.1). Provides
//! no isolation whatsoever: one aggressive flow can occupy the whole
//! buffer and starve everyone (which Figures 2/5 demonstrate).

use super::{BufferPolicy, DropReason, Occupancy, Verdict};
use crate::flow::FlowId;

/// Shared buffer with drop-on-full and no per-flow limits.
#[derive(Debug, Clone)]
pub struct SharedBuffer {
    occ: Occupancy,
}

impl SharedBuffer {
    /// A shared buffer of `capacity_bytes` tracking `flows` flows
    /// (tracking is only for statistics; it never affects admission).
    pub fn new(capacity_bytes: u64, flows: usize) -> SharedBuffer {
        SharedBuffer {
            occ: Occupancy::new(capacity_bytes, flows),
        }
    }
}

impl BufferPolicy for SharedBuffer {
    fn admit(&mut self, flow: FlowId, len: u32) -> Verdict {
        if self.occ.fits(len) {
            self.occ.charge(flow, len);
            Verdict::Admit
        } else {
            Verdict::Drop(DropReason::BufferFull)
        }
    }

    fn release(&mut self, flow: FlowId, len: u32) {
        self.occ.credit(flow, len);
    }

    fn flow_occupancy(&self, flow: FlowId) -> u64 {
        self.occ.of(flow)
    }

    fn total_occupancy(&self) -> u64 {
        self.occ.total()
    }

    fn capacity(&self) -> u64 {
        self.occ.capacity()
    }

    fn threshold(&self, _flow: FlowId) -> Option<u64> {
        None
    }

    fn name(&self) -> &'static str {
        "shared-buffer"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_until_full_regardless_of_flow() {
        let mut p = SharedBuffer::new(1500, 2);
        assert!(p.admit(FlowId(0), 500).admitted());
        assert!(p.admit(FlowId(0), 500).admitted());
        assert!(p.admit(FlowId(0), 500).admitted());
        // Flow 1 is starved: no isolation.
        assert_eq!(
            p.admit(FlowId(1), 500),
            Verdict::Drop(DropReason::BufferFull)
        );
        assert_eq!(p.flow_occupancy(FlowId(0)), 1500);
        assert_eq!(p.threshold(FlowId(0)), None);
    }

    #[test]
    fn release_frees_space() {
        let mut p = SharedBuffer::new(1000, 2);
        assert!(p.admit(FlowId(0), 1000).admitted());
        assert!(!p.admit(FlowId(1), 1).admitted());
        p.release(FlowId(0), 1000);
        assert!(p.admit(FlowId(1), 1000).admitted());
        assert_eq!(p.total_occupancy(), 1000);
    }

    #[test]
    fn exact_fit_admitted() {
        let mut p = SharedBuffer::new(500, 1);
        assert!(p.admit(FlowId(0), 500).admitted());
        assert_eq!(p.total_occupancy(), p.capacity());
    }

    #[test]
    fn drop_leaves_state_untouched() {
        let mut p = SharedBuffer::new(400, 1);
        assert!(!p.admit(FlowId(0), 500).admitted());
        assert_eq!(p.total_occupancy(), 0);
        assert_eq!(p.flow_occupancy(FlowId(0)), 0);
    }
}
