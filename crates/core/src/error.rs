//! Configuration-time error type.
//!
//! Hot-path operations (admission decisions, scheduler picks) are
//! infallible by construction; everything that can go wrong is caught
//! when a configuration is assembled, following the "misuse is a
//! configuration error, not a runtime branch" idiom.

use core::fmt;

/// Why a link/flow/policy configuration was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Link rate must be positive.
    ZeroLinkRate,
    /// Buffer must be able to hold at least one maximum-size packet.
    BufferTooSmall {
        /// Configured capacity, bytes.
        capacity: u64,
        /// Required minimum, bytes.
        needed: u64,
    },
    /// Σρᵢ ≥ R: reservations exceed the link (Eq. 5/7 violated at
    /// configuration time; admission control reports the same condition
    /// per-flow as a rejection instead).
    Oversubscribed {
        /// Total reserved rate, b/s.
        reserved_bps: u64,
        /// Link rate, b/s.
        link_bps: u64,
    },
    /// A flow id is out of range or duplicated.
    BadFlowId(u32),
    /// A numeric parameter is outside its meaningful domain.
    BadParameter {
        /// Which parameter.
        what: &'static str,
        /// Human-readable constraint.
        constraint: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroLinkRate => write!(f, "link rate must be positive"),
            ConfigError::BufferTooSmall { capacity, needed } => {
                write!(f, "buffer of {capacity} B cannot hold a {needed} B packet")
            }
            ConfigError::Oversubscribed {
                reserved_bps,
                link_bps,
            } => write!(
                f,
                "reserved {reserved_bps} b/s exceeds link capacity {link_bps} b/s"
            ),
            ConfigError::BadFlowId(id) => write!(f, "invalid flow id {id}"),
            ConfigError::BadParameter { what, constraint } => {
                write!(f, "parameter `{what}` invalid: {constraint}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ConfigError::Oversubscribed {
            reserved_bps: 50_000_000,
            link_bps: 48_000_000,
        };
        let s = e.to_string();
        assert!(s.contains("50000000") && s.contains("48000000"));
        assert!(ConfigError::ZeroLinkRate.to_string().contains("positive"));
        assert!(ConfigError::BadFlowId(9).to_string().contains('9'));
    }
}
