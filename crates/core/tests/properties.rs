//! Property-based tests over qbm-core's arithmetic and invariants.

use proptest::prelude::*;
use qbm_core::admission::fifo_required_buffer;
use qbm_core::flow::{FlowId, FlowSpec};
use qbm_core::policy::{compute_thresholds, ThresholdOptions};
use qbm_core::token_bucket::TokenBucket;
use qbm_core::units::{Dur, Rate, Time};

proptest! {
    /// Transmission time is (nearly) additive: splitting a transfer
    /// into two packets costs at most 1 ns of rounding.
    #[test]
    fn transmission_time_additive(
        rate in 1_000u64..10_000_000_000,
        a in 1u64..100_000,
        b in 1u64..100_000,
    ) {
        let r = Rate::from_bps(rate);
        let whole = r.transmission_time(a + b).as_nanos() as i128;
        let split = r.transmission_time(a).as_nanos() as i128
            + r.transmission_time(b).as_nanos() as i128;
        prop_assert!((whole - split).abs() <= 1, "whole {whole} split {split}");
    }

    /// Monotonicity: more bytes never transmit faster; a faster link
    /// never transmits slower.
    #[test]
    fn transmission_time_monotone(
        rate in 1_000u64..1_000_000_000,
        bytes in 1u64..1_000_000,
        extra_bytes in 1u64..1_000_000,
        extra_rate in 1u64..1_000_000_000,
    ) {
        let r = Rate::from_bps(rate);
        prop_assert!(r.transmission_time(bytes + extra_bytes) >= r.transmission_time(bytes));
        let faster = Rate::from_bps(rate + extra_rate);
        prop_assert!(faster.transmission_time(bytes) <= r.transmission_time(bytes));
    }

    /// `bits_in` and `time_to_send_bits` are consistent inverses.
    #[test]
    fn rate_inverse_functions(
        rate in 1_000u64..1_000_000_000,
        bits in 1u64..10_000_000,
    ) {
        let r = Rate::from_bps(rate);
        let t = r.time_to_send_bits(bits).unwrap();
        prop_assert!(r.bits_in(t) >= bits);
        if t.as_nanos() > 0 {
            prop_assert!(r.bits_in(Dur(t.as_nanos() - 1)) < bits);
        }
    }

    /// A token bucket's level never exceeds its depth nor goes negative,
    /// under any interleaving of updates and sends.
    #[test]
    fn token_bucket_level_bounded(
        sigma in 100u64..100_000,
        rate in 1_000u64..100_000_000,
        steps in proptest::collection::vec((1u64..1_000_000, 1u64..2_000), 1..100),
    ) {
        let mut tb = TokenBucket::new(sigma, Rate::from_bps(rate));
        let mut now = Time::ZERO;
        for (dt, want) in steps {
            now += Dur(dt);
            let _ = tb.try_consume(now, want);
            let level = tb.level_bytes();
            prop_assert!(level >= -1e-9 && level <= sigma as f64 + 1e-9, "level {level}");
        }
    }

    /// Once a packet conforms it keeps conforming (token level is
    /// non-decreasing while idle).
    #[test]
    fn conformance_is_monotone_in_time(
        sigma in 1_000u64..100_000,
        rate in 1_000u64..100_000_000,
        drain in 1u64..100_000,
        wait1 in 0u64..10_000_000,
        wait2 in 0u64..10_000_000,
        pkt in 1u64..1_500,
    ) {
        let mut tb = TokenBucket::new(sigma, Rate::from_bps(rate));
        let _ = tb.try_consume(Time::ZERO, drain.min(sigma));
        let t1 = Time::ZERO + Dur(wait1);
        let t2 = t1 + Dur(wait2);
        let c1 = tb.conforms(t1, pkt);
        let c2 = tb.conforms(t2, pkt);
        prop_assert!(!c1 || c2, "conformance lost while idle");
    }

    /// Footnote-5 scale-up: whenever the raw thresholds undershoot the
    /// buffer, the scaled ones tile it (± a byte per flow), and scaling
    /// never produces a threshold below the raw one.
    #[test]
    fn scale_up_tiles_buffer(
        rhos in proptest::collection::vec(100_000u64..8_000_000, 1..10),
        sigmas in proptest::collection::vec(1_000u64..200_000, 1..10),
        buffer in 100_000u64..8_000_000,
    ) {
        let n = rhos.len().min(sigmas.len());
        let specs: Vec<FlowSpec> = (0..n).map(|i| {
            FlowSpec::builder(FlowId(i as u32))
                .token_rate(Rate::from_bps(rhos[i]))
                .bucket(sigmas[i])
                .build()
        }).collect();
        let link = Rate::from_bps(48_000_000);
        let raw = compute_thresholds(buffer, link, &specs, ThresholdOptions {
            scale_up_to_partition: false,
        });
        let scaled = compute_thresholds(buffer, link, &specs, ThresholdOptions::default());
        let raw_sum: u64 = raw.iter().sum();
        if raw_sum < buffer {
            let scaled_sum: u64 = scaled.iter().sum();
            prop_assert!(
                (scaled_sum as i64 - buffer as i64).unsigned_abs() <= n as u64,
                "scaled sum {scaled_sum} vs buffer {buffer}"
            );
            for (r, s) in raw.iter().zip(&scaled) {
                prop_assert!(s >= r, "scale-up shrank a threshold");
            }
        } else {
            prop_assert_eq!(raw, scaled);
        }
    }

    /// At exactly the Eq.-9 buffer, the raw Prop-2 thresholds tile the
    /// buffer: Σ(σi + ρi·B/R) = B. The algebraic fixed point.
    #[test]
    fn eq9_buffer_is_threshold_fixed_point(
        rhos in proptest::collection::vec(100_000u64..6_000_000, 1..8),
        sigmas in proptest::collection::vec(1_000u64..200_000, 1..8),
    ) {
        let n = rhos.len().min(sigmas.len());
        let specs: Vec<FlowSpec> = (0..n).map(|i| {
            FlowSpec::builder(FlowId(i as u32))
                .token_rate(Rate::from_bps(rhos[i]))
                .bucket(sigmas[i])
                .build()
        }).collect();
        let link = Rate::from_bps(48_000_000);
        let needed = fifo_required_buffer(link, &specs);
        prop_assume!(needed.is_finite());
        let b = needed.round() as u64;
        let raw = compute_thresholds(b, link, &specs, ThresholdOptions {
            scale_up_to_partition: false,
        });
        let sum: u64 = raw.iter().sum();
        prop_assert!(
            (sum as i64 - b as i64).unsigned_abs() <= n as u64 + 1,
            "thresholds sum {sum} vs Eq.9 buffer {b}"
        );
    }
}
