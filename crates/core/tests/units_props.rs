//! Property-based coverage for the `units.rs` newtypes — the sanctioned
//! f64 boundary the `qbm-lint` `float-cast` rule funnels everything
//! through. Round-trips, overflow behaviour, and ordering must hold for
//! the whole representable range, not just the paper's parameters.

use proptest::prelude::*;
use qbm_core::units::{approx_eq, ByteSize, Dur, Rate, Time, NS_PER_SEC};

proptest! {
    /// Second-granularity constructors and the f64 accessors agree.
    #[test]
    fn time_secs_round_trip(s in 0u64..500_000_000) {
        let t = Time::from_secs(s);
        prop_assert_eq!(t.as_nanos(), s * NS_PER_SEC);
        prop_assert!(approx_eq(t.as_secs_f64(), s as f64, 1e-6));
        let back = Time::from_secs_f64(t.as_secs_f64());
        // f64 has 53 mantissa bits; up to 2^29 s the ns round-trip is
        // within the quantization of the nearest representable double.
        let err = back.as_nanos().abs_diff(t.as_nanos());
        prop_assert!(err <= 128, "round-trip error {err} ns at {s} s");
    }

    /// `Dur::from_secs_f64` rounds to the nearest nanosecond exactly on
    /// inputs that are themselves whole nanoseconds.
    #[test]
    fn dur_ns_round_trip(ns in 0u64..(1u64 << 52)) {
        let d = Dur(ns);
        let back = Dur::from_secs_f64(d.as_secs_f64());
        let err = back.as_nanos().abs_diff(ns);
        // One ulp of ns/1e9 at this magnitude is < 1 ns up to 2^52.
        prop_assert!(err <= 1, "round-trip error {err} ns at {ns}");
    }

    /// Time ordering is exactly nanosecond ordering, and advancing by a
    /// non-zero duration strictly increases a (non-saturating) time.
    #[test]
    fn time_ordering_matches_nanos(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2, d in 1u64..NS_PER_SEC) {
        let (ta, tb) = (Time(a), Time(b));
        prop_assert_eq!(ta.cmp(&tb), a.cmp(&b));
        prop_assert!(ta + Dur(d) > ta);
        prop_assert_eq!((ta + Dur(d)).since(ta), Dur(d));
    }

    /// Saturating add is monotone, never panics, and caps at `Time::MAX`.
    #[test]
    fn time_saturating_add_caps(t in 0u64..u64::MAX, d in 0u64..u64::MAX) {
        let out = Time(t).saturating_add(Dur(d));
        prop_assert!(out >= Time(t));
        prop_assert!(out <= Time::MAX);
        if let Some(exact) = t.checked_add(d) {
            prop_assert_eq!(out, Time(exact));
        } else {
            prop_assert_eq!(out, Time::MAX);
        }
    }

    /// Duration arithmetic is exact u64 arithmetic: commutative add,
    /// add/sub inverse, and multiplication as repeated addition.
    #[test]
    fn dur_arithmetic_exact(a in 0u64..1u64 << 40, b in 0u64..1u64 << 40, k in 0u64..1u64 << 10) {
        prop_assert_eq!(Dur(a) + Dur(b), Dur(b) + Dur(a));
        prop_assert_eq!((Dur(a) + Dur(b)) - Dur(b), Dur(a));
        prop_assert_eq!(Dur(a) * k, Dur(a * k));
        if k > 0 {
            prop_assert_eq!(Dur(a * k) / k, Dur(a));
        }
        prop_assert_eq!(Dur(a).is_zero(), a == 0);
    }

    /// Rate construction from the paper's Mb/s / Kb/s units is exact at
    /// their natural resolutions, and `Sum` equals component-wise add.
    #[test]
    fn rate_units_round_trip(mbps_milli in 0u64..100_000_000, parts in proptest::collection::vec(0u64..1u64 << 40, 0..8)) {
        // mbps with three decimals → exact bps (avoids float dust).
        let r = Rate::from_mbps(mbps_milli as f64 / 1000.0);
        prop_assert_eq!(r.bps(), mbps_milli * 1000);
        prop_assert!(approx_eq(r.mbps(), mbps_milli as f64 / 1000.0, 1e-6));

        let total: Rate = parts.iter().map(|&p| Rate::from_bps(p)).sum();
        prop_assert_eq!(total.bps(), parts.iter().sum::<u64>());
    }

    /// A rate's fraction of a larger rate stays in [0, 1] and inverts.
    #[test]
    fn rate_fraction_bounded(num in 0u64..1u64 << 50, den in 1u64..1u64 << 50) {
        let f = Rate::from_bps(num.min(den)).fraction_of(Rate::from_bps(den));
        prop_assert!((0.0..=1.0).contains(&f), "fraction {f}");
        prop_assert!(approx_eq(f * den as f64, num.min(den) as f64, 1e-3 * den as f64));
    }

    /// ByteSize units: binary constructors are exact, `bits` is 8×, and
    /// ordering follows the byte count.
    #[test]
    fn byte_size_units_exact(k in 0u64..1u64 << 40, m in 0u64..1u64 << 30) {
        prop_assert_eq!(ByteSize::from_kib(k).bytes(), k * 1024);
        prop_assert_eq!(ByteSize::from_mib(m).bytes(), m << 20);
        let b = ByteSize::from_bytes(k);
        prop_assert_eq!(b.bits(), k * 8);
        prop_assert_eq!(b + ByteSize::from_bytes(m), ByteSize::from_bytes(k + m));
        prop_assert_eq!(ByteSize::from_bytes(k) < ByteSize::from_bytes(m), k < m);
        prop_assert!(approx_eq(ByteSize::from_kib(k).kib(), k as f64, 1e-6 * (k as f64 + 1.0)));
    }

    /// Fractional-MiB construction round-trips through `mib()` within
    /// half a byte of quantization.
    #[test]
    fn byte_size_mib_round_trip(bytes in 0u64..1u64 << 45) {
        let s = ByteSize::from_bytes(bytes);
        let back = ByteSize::from_mib_f64(s.mib());
        let err = back.bytes().abs_diff(bytes);
        prop_assert!(err <= 1, "MiB round-trip error {err} B at {bytes}");
    }

    /// `transmission_time` composed with `bits_in` is the identity up
    /// to the clock quantum — across the full (rate, size) grid, not
    /// just the paper's 48 Mb/s link. Round-to-nearest-ns can deviate
    /// by at most the bits conveyed in half a nanosecond (plus one for
    /// the floor in `bits_in`), which is what makes repeated
    /// transmissions drift-free at any link speed.
    #[test]
    fn transmission_round_trip_wide(rate in 1u64..1u64 << 40, bytes in 0u64..1u64 << 30) {
        let r = Rate::from_bps(rate);
        let t = r.transmission_time(bytes);
        let bits = r.bits_in(t);
        let err = bits.abs_diff(bytes * 8);
        let half_ns_bits = rate / (2 * NS_PER_SEC) + 1;
        prop_assert!(err <= half_ns_bits, "rate {rate} bytes {bytes}: err {err} bits");
    }

    /// `approx_eq` is reflexive, symmetric, and honours its epsilon.
    #[test]
    fn approx_eq_contract(a in -1e12f64..1e12, delta in 0f64..1e3, eps in 0f64..1e3) {
        prop_assert!(approx_eq(a, a, 0.0));
        prop_assert_eq!(approx_eq(a, a + delta, eps), approx_eq(a + delta, a, eps));
        if delta <= eps {
            prop_assert!(approx_eq(a, a + delta, eps + 1e-9));
        }
        if delta > 2.0 * eps + 1e-6 {
            prop_assert!(!approx_eq(a, a + delta, eps));
        }
    }
}

/// Overflow must be loud: checked arithmetic panics instead of wrapping
/// (a wrapped occupancy counter is exactly the silent buffer-accounting
/// bug the lint pass exists to prevent).
#[test]
#[should_panic(expected = "overflow")]
fn time_overflow_panics() {
    let _ = Time::MAX + Dur(1);
}

/// Underflow is equally loud.
#[test]
#[should_panic(expected = "underflow")]
fn dur_underflow_panics() {
    let _ = Dur(0) - Dur(1);
}

/// Rate sums that exceed u64 panic rather than wrap.
#[test]
#[should_panic(expected = "overflow")]
fn rate_sum_overflow_panics() {
    let _ = Rate::from_bps(u64::MAX) + Rate::from_bps(1);
}

/// ByteSize addition panics on overflow.
#[test]
#[should_panic(expected = "overflow")]
fn byte_size_overflow_panics() {
    let _ = ByteSize::from_bytes(u64::MAX) + ByteSize::from_bytes(1);
}
