//! End-to-end checks of the paper's headline claims, spanning
//! qbm-core + qbm-traffic + qbm-sched + qbm-sim: each test runs the
//! packet-level simulator on (reduced) paper workloads and asserts the
//! *shape* the corresponding figure reports.

use qos_buffer_mgmt::core::admission::fifo_required_buffer;
use qos_buffer_mgmt::core::flow::Conformance;
use qos_buffer_mgmt::core::policy::PolicyKind;
use qos_buffer_mgmt::core::units::{ByteSize, Dur};
use qos_buffer_mgmt::sched::SchedKind;
use qos_buffer_mgmt::sim::scenarios::{
    case1_grouping, hybrid_schemes, paper_experiment, section3_schemes, LINK_RATE,
};
use qos_buffer_mgmt::sim::{ExperimentConfig, PolicySpec};
use qos_buffer_mgmt::traffic::table1;

fn quick(cfg: &mut ExperimentConfig) {
    cfg.warmup = Dur::from_secs(1);
    cfg.duration = Dur::from_secs(7);
}

/// §2 / Figure 2: with B at the Eq.-9 requirement, FIFO+thresholds
/// delivers lossless service to every conformant flow — at packet
/// level, against the real Table-1 aggressors.
#[test]
fn conformant_flows_lossless_at_eq9_buffer() {
    let specs = table1();
    let needed = fifo_required_buffer(LINK_RATE, &specs).ceil() as u64;
    let scheme = section3_schemes()
        .into_iter()
        .find(|s| s.label == "fifo+thresh")
        .unwrap();
    let mut cfg = paper_experiment(&specs, &scheme, needed);
    quick(&mut cfg);
    for seed in 1..=3 {
        let res = cfg.run_once(seed);
        let loss = res.class_loss_ratio(&specs, Conformance::Conformant);
        assert_eq!(
            loss, 0.0,
            "seed {seed}: conformant loss {loss} with B = Eq.9 requirement"
        );
    }
}

/// Figure 2's observation: without buffer management, FIFO and WFQ show
/// *identical* conformant loss — total occupancy evolves identically
/// under any work-conserving scheduler, and drops depend only on it.
#[test]
fn no_mgmt_loss_is_scheduler_invariant() {
    let specs = table1();
    let schemes = section3_schemes();
    let fifo = schemes.iter().find(|s| s.label == "fifo+none").unwrap();
    let wfq = schemes.iter().find(|s| s.label == "wfq+none").unwrap();
    let b = ByteSize::from_mib(1).bytes();
    let mut cfg_f = paper_experiment(&specs, fifo, b);
    let mut cfg_w = paper_experiment(&specs, wfq, b);
    quick(&mut cfg_f);
    quick(&mut cfg_w);
    let rf = cfg_f.run_once(5);
    let rw = cfg_w.run_once(5);
    for i in 0..specs.len() {
        assert_eq!(
            rf.flows[i].dropped_pkts, rw.flows[i].dropped_pkts,
            "flow {i}: drop counts diverged between FIFO and WFQ (no mgmt)"
        );
        assert_eq!(rf.flows[i].offered_pkts, rw.flows[i].offered_pkts);
    }
}

/// Figure 1 vs 4: once B exceeds the headroom H, buffer sharing
/// recovers utilization that fixed thresholds leave on the table.
#[test]
fn sharing_beats_thresholds_on_utilization() {
    let specs = table1();
    let b = ByteSize::from_mib(4).bytes();
    let h = ByteSize::from_mib(1).bytes();
    let mk = |policy: PolicySpec| {
        let mut cfg = ExperimentConfig {
            link_rate: LINK_RATE,
            buffer_bytes: b,
            specs: specs.clone(),
            sched: SchedKind::Fifo,
            policy,
            warmup: Dur::from_secs(1),
            duration: Dur::from_secs(7),
            sojourns: Default::default(),
            stats: Default::default(),
            sources: Default::default(),
        };
        quick(&mut cfg);
        cfg.run_many(1, 3)
            .summarize(|r| r.aggregate_throughput_bps())
    };
    let thresh = mk(PolicySpec::Kind(PolicyKind::Threshold));
    let sharing = mk(PolicySpec::Kind(PolicyKind::Sharing { headroom_bytes: h }));
    assert!(
        sharing.mean > thresh.mean,
        "sharing {:.2e} not above thresholds {:.2e}",
        sharing.mean,
        thresh.mean
    );
    // And sharing must not hurt the conformant flows (Figure 5).
    let mut cfg = ExperimentConfig {
        link_rate: LINK_RATE,
        buffer_bytes: b,
        specs: specs.clone(),
        sched: SchedKind::Fifo,
        policy: PolicySpec::Kind(PolicyKind::Sharing { headroom_bytes: h }),
        warmup: Dur::from_secs(1),
        duration: Dur::from_secs(7),
        sojourns: Default::default(),
        stats: Default::default(),
        sources: Default::default(),
    };
    quick(&mut cfg);
    let res = cfg.run_once(2);
    assert_eq!(res.class_loss_ratio(&specs, Conformance::Conformant), 0.0);
}

/// §4.2 / Figures 8–10: the 3-queue hybrid tracks per-flow WFQ closely
/// on aggregate utilization (within a few percent of the link rate).
#[test]
fn hybrid_tracks_wfq() {
    let specs = table1();
    let b = ByteSize::from_mib(2).bytes();
    let h = ByteSize::from_kib(512).bytes();
    let schemes = hybrid_schemes(&specs, &case1_grouping(), b, h);
    let run = |label: &str| {
        let s = schemes.iter().find(|s| s.label == label).unwrap();
        let mut cfg = paper_experiment(&specs, s, b);
        quick(&mut cfg);
        cfg.run_many(1, 3)
            .summarize(|r| r.aggregate_throughput_bps() / 48e6 * 100.0)
    };
    let wfq = run("wfq+sharing");
    let hyb = run("hybrid+sharing");
    assert!(
        (wfq.mean - hyb.mean).abs() < 5.0,
        "hybrid utilization {:.1}% far from WFQ {:.1}%",
        hyb.mean,
        wfq.mean
    );
}

/// Figure 3's isolation claim quantified: under thresholds, aggressive
/// flows cannot push conformant flows below their reservations.
#[test]
fn conformant_throughput_meets_reservation_under_thresholds() {
    let specs = table1();
    let scheme = section3_schemes()
        .into_iter()
        .find(|s| s.label == "fifo+thresh")
        .unwrap();
    let mut cfg = paper_experiment(&specs, &scheme, ByteSize::from_mib(2).bytes());
    // The slowest-converging conformant sources (8 Mb/s ON-OFF) need a
    // window of tens of seconds before their offered rate settles near
    // the token rate, so this test measures longer than the others.
    cfg.warmup = Dur::from_secs(1);
    cfg.duration = Dur::from_secs(31);
    let mr = cfg.run_many(1, 3);
    for s in specs.iter().filter(|s| s.class.is_conformant()) {
        let thr = mr.summarize(|r| r.flow_throughput_bps(s.id));
        // A shaped ON-OFF source offers its token rate on average, so
        // delivery within 15 % of the reservation over this window
        // demonstrates the guarantee (losses are zero; the slack is
        // source-side variance only).
        let reserved = s.token_rate.bps() as f64;
        assert!(
            thr.mean > 0.85 * reserved,
            "{}: delivered {:.2e} of reserved {:.2e}",
            s.id,
            thr.mean,
            reserved
        );
    }
}
