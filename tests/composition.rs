//! Multi-hop composition: network-calculus burst inflation
//! (`σ_out = σ + ρ·D`) drives per-hop provisioning, and the tandem
//! simulator confirms the resulting line is lossless for conformant
//! flows — the deployment recipe the paper's single-node analysis
//! enables.

use qos_buffer_mgmt::core::analysis::delay::{fifo_delay_bound, output_burstiness_bytes};
use qos_buffer_mgmt::core::flow::{Conformance, FlowSpec};
use qos_buffer_mgmt::core::policy::PolicyKind;
use qos_buffer_mgmt::core::units::{Rate, Time};
use qos_buffer_mgmt::sched::SchedKind;
use qos_buffer_mgmt::sim::tandem::{run_line, Hop};
use qos_buffer_mgmt::sim::PolicySpec;
use qos_buffer_mgmt::traffic::table1;

/// Inflate every flow's σ by the upstream hop's worst-case delay and
/// size the hop with Eq. 9 over the inflated specs.
fn provision_hop(
    specs: &[FlowSpec],
    rate: Rate,
    upstream_delay: Option<qos_buffer_mgmt::core::units::Dur>,
) -> (Vec<FlowSpec>, u64) {
    let inflated: Vec<FlowSpec> = specs
        .iter()
        .map(|s| {
            let sigma = match upstream_delay {
                Some(d) => {
                    output_burstiness_bytes(s.bucket_bytes as f64, s.token_rate, d).ceil() as u64
                }
                None => s.bucket_bytes,
            };
            let mut spec = *s;
            spec.bucket_bytes = sigma;
            spec
        })
        .collect();
    let buffer =
        qos_buffer_mgmt::core::admission::fifo_required_buffer(rate, &inflated).ceil() as u64;
    (inflated, buffer)
}

#[test]
fn three_hop_line_provisioned_by_network_calculus_is_lossless() {
    let specs = table1();
    let rates = [
        Rate::from_mbps(48.0),
        Rate::from_mbps(44.0),
        Rate::from_mbps(40.0),
    ];
    // Provision hop by hop, inflating σ with the upstream delay bound.
    let mut hops = Vec::new();
    let mut upstream_delay = None;
    let mut hop_specs = specs.clone();
    for &rate in &rates {
        let (inflated, buffer) = provision_hop(&hop_specs, rate, upstream_delay);
        hops.push(Hop {
            link_rate: rate,
            buffer_bytes: buffer,
            sched: SchedKind::Fifo,
            // Thresholds computed from the *inflated* specs at this hop.
            policy: PolicySpec::ExplicitThreshold {
                thresholds: qos_buffer_mgmt::core::policy::compute_thresholds(
                    buffer,
                    rate,
                    &inflated,
                    Default::default(),
                ),
            },
        });
        upstream_delay = Some(fifo_delay_bound(buffer, rate, 500));
        hop_specs = inflated;
    }
    let res = run_line(&hops, &specs, 1, Time::from_secs(1), Time::from_secs(31));
    assert_eq!(res.len(), 3);
    for (h, r) in res.iter().enumerate() {
        assert_eq!(
            r.class_loss_ratio(&specs, Conformance::Conformant),
            0.0,
            "hop {h}: conformant loss on a calculus-provisioned line"
        );
    }
    // End-to-end throughput still meets every conformant reservation.
    let last = res.last().unwrap();
    for s in specs.iter().filter(|s| s.class.is_conformant()) {
        let thr = last.flow_throughput_bps(s.id);
        assert!(
            thr > 0.8 * s.token_rate.bps() as f64,
            "{}: end-to-end {thr}",
            s.id
        );
    }
}

#[test]
fn burst_inflation_is_monotone_along_the_line() {
    let specs = table1();
    let d = fifo_delay_bound(1 << 20, Rate::from_mbps(48.0), 500);
    for s in &specs {
        let path = qos_buffer_mgmt::core::analysis::delay::burstiness_along_path(
            s.bucket_bytes as f64,
            s.token_rate,
            &[d, d, d],
        );
        assert!(path.windows(2).all(|w| w[1] > w[0]));
        assert!(path[0] > s.bucket_bytes as f64);
    }
}

#[test]
fn under_provisioned_middle_hop_loses_what_calculus_predicts_it_might() {
    // Sanity inverse: skip the inflation at hop 2 (use the original σ)
    // with a deliberately small buffer — conformant flows may now lose
    // packets there, showing the inflation step is load-bearing.
    let specs = table1();
    let r2 = Rate::from_mbps(40.0);
    let hops = vec![
        Hop {
            link_rate: Rate::from_mbps(48.0),
            buffer_bytes: 1 << 21,
            sched: SchedKind::Fifo,
            policy: PolicySpec::Kind(PolicyKind::Threshold),
        },
        Hop {
            link_rate: r2,
            // Far below the Eq.9 requirement at 40 Mb/s (≈ 3.3 MiB).
            buffer_bytes: 128 * 1024,
            sched: SchedKind::Fifo,
            policy: PolicySpec::Kind(PolicyKind::Threshold),
        },
    ];
    let res = run_line(&hops, &specs, 5, Time::from_secs(1), Time::from_secs(9));
    let loss2 = res[1].class_loss_ratio(&specs, Conformance::Conformant);
    assert!(
        loss2 > 0.0,
        "under-provisioned bottleneck showed no conformant loss — \
         the provisioning rule would be vacuous"
    );
}
