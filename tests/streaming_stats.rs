//! Streaming-telemetry acceptance (DESIGN.md §14): over a horizon 100×
//! the paper's 22 s experiment, the delay quantile sketch agrees with an
//! exact oracle within its configured relative-error bound, telemetry
//! memory stays flat with run length, and sketch-carrying campaign runs
//! are byte-identical for any thread count.

use qos_buffer_mgmt::core::flow::{Conformance, FlowId, FlowSpec};
use qos_buffer_mgmt::core::policy::PolicyKind;
use qos_buffer_mgmt::core::units::{ByteSize, Dur, Rate, Time};
use qos_buffer_mgmt::obs::{HeatmapObserver, HeatmapParams, Observer};
use qos_buffer_mgmt::sched::SchedKind;
use qos_buffer_mgmt::sim::{ExperimentConfig, PolicySpec, SimResult, SketchParams, StatsConfig};

/// A scaled-down Table-1-style pair of flows: the same shape at ~1/100
/// the event rate, so a 2200 s horizon stays quick in debug builds.
fn quick_specs() -> Vec<FlowSpec> {
    (0..2u32)
        .map(|i| {
            FlowSpec::builder(FlowId(i))
                .peak(Rate::from_bps(160_000))
                .avg(Rate::from_bps(20_000))
                .bucket(5 * 1024)
                .token_rate(Rate::from_bps(20_000))
                .class(Conformance::Conformant)
                .build()
        })
        .collect()
}

fn cfg(duration: Dur) -> ExperimentConfig {
    ExperimentConfig {
        link_rate: Rate::from_bps(480_000),
        buffer_bytes: ByteSize::from_kib(64).bytes(),
        specs: quick_specs(),
        sched: SchedKind::Fifo,
        policy: PolicySpec::Kind(PolicyKind::Threshold),
        warmup: Dur::from_secs(1),
        duration,
        sojourns: Default::default(),
        stats: StatsConfig {
            sketches: Some(SketchParams::default()),
            ..StatsConfig::default()
        },
        sources: Default::default(),
    }
}

/// Exact per-departure sojourn recorder, windowed exactly like
/// `StatsCollector` (departures in `[warmup_end, run_end)`).
struct DelayOracle {
    warmup_end: Time,
    run_end: Time,
    delays: Vec<u64>,
}

impl Observer for DelayOracle {
    fn on_departure(&mut self, now: Time, _flow: FlowId, _len: u32, arrival: Time, _link: u32) {
        if now >= self.warmup_end && now < self.run_end {
            self.delays.push(now.since(arrival).as_nanos());
        }
    }
}

#[test]
fn sketch_tracks_exact_oracle_over_long_horizon() {
    let horizon = Dur::from_secs(2200); // 100× the paper's 22 s runs
    let c = cfg(horizon);
    let mut oracle = DelayOracle {
        warmup_end: Time::ZERO + c.warmup,
        run_end: Time::ZERO + c.warmup + horizon,
        delays: Vec::new(),
    };
    let res = c.run_once_with(1, &mut oracle);
    let sketch = res.delay_sketch.as_ref().expect("sketches attached");
    assert_eq!(
        sketch.count(),
        oracle.delays.len() as u64,
        "sketch and oracle disagree on the windowed departure count"
    );
    assert!(
        oracle.delays.len() > 10_000,
        "horizon too quiet to exercise the sketch ({} departures)",
        oracle.delays.len()
    );
    oracle.delays.sort_unstable();
    for q in [0.5, 0.99] {
        let rank = ((q * oracle.delays.len() as f64).ceil() as usize).clamp(1, oracle.delays.len());
        let exact = oracle.delays[rank - 1];
        let est = sketch.quantile(q);
        assert!(
            est >= exact,
            "p{q}: sketch {est} below exact {exact} (upper edges cannot undershoot)"
        );
        let bound = (exact as f64 * sketch.relative_error()) as u64 + 1;
        assert!(
            est - exact <= bound,
            "p{q}: sketch {est} vs exact {exact} exceeds the {:.2}% bound",
            sketch.relative_error() * 100.0
        );
    }
}

fn run_with_heatmap(duration: Dur) -> (SimResult, HeatmapObserver) {
    let c = cfg(duration);
    let mut obs = HeatmapObserver::new(HeatmapParams::default());
    let res = c.run_once_with(1, &mut obs);
    (res, obs)
}

#[test]
fn telemetry_memory_is_independent_of_run_length() {
    let (res_short, hm_short) = run_with_heatmap(Dur::from_secs(22));
    let (res_long, hm_long) = run_with_heatmap(Dur::from_secs(2200));
    // The long run records ~100× the events into the same O(buckets ×
    // slots) footprint — ring eviction into coarser tiers, never growth.
    assert!(hm_long.delay.count() > 10 * hm_short.delay.count());
    assert_eq!(hm_short.mem_bytes(), hm_long.mem_bytes());
    let mem = |r: &SimResult| {
        r.delay_sketch.as_ref().unwrap().mem_bytes()
            + r.occ_sketch.as_ref().unwrap().mem_bytes()
            + r.flows
                .iter()
                .filter_map(|f| f.delay_sketch.as_ref())
                .map(|s| s.mem_bytes())
                .sum::<usize>()
    };
    assert_eq!(mem(&res_short), mem(&res_long));
}

#[test]
fn sketch_campaign_runs_are_thread_invariant() {
    let c = cfg(Dur::from_secs(30));
    let one = c.run_many_threaded(1, 8, 1);
    let eight = c.run_many_threaded(1, 8, 8);
    assert_eq!(
        one.runs, eight.runs,
        "sketch-carrying runs drift with thread count"
    );
    // Byte-identical, not just equal: the Debug rendering includes the
    // sketch digests, so any bucket-level divergence shows here.
    assert_eq!(format!("{:?}", one.runs), format!("{:?}", eight.runs));
}
