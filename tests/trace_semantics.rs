//! Trace semantics against the paper's Example 1 analysis.
//!
//! A trace is only useful if its records mean what they claim. This
//! test drives the §3.3 sharing policy with a *deterministic* workload
//! — one greedy CBR flow against one idle flow — where the analytical
//! model (`core::analysis::example1`) predicts, in closed form, when
//! the greedy flow's occupancy crosses its reserved share and when the
//! self-limiting sharing rule starts refusing it buffer. The traced
//! threshold-crossing and headroom-denied-drop records must land on
//! those instants to within packet granularity.

use qos_buffer_mgmt::core::analysis::Example1;
use qos_buffer_mgmt::core::flow::FlowId;
use qos_buffer_mgmt::core::policy::{BufferSharing, DropReason};
use qos_buffer_mgmt::core::units::{ByteSize, Rate, Time};
use qos_buffer_mgmt::obs::{verify_trace, TraceRecord, Tracer};
use qos_buffer_mgmt::sched::Fifo;
use qos_buffer_mgmt::sim::Router;
use qos_buffer_mgmt::traffic::{CbrSource, Source};

/// Packet length used throughout (the workloads' 500-byte cells).
const PKT: u32 = 500;

#[test]
fn crossing_and_denial_times_match_example1_analysis() {
    // Example 1 geometry: B = 1 MiB split by reservation on a
    // 48 Mb/s link with flow 0 reserved 12 Mb/s, so
    // B1 = B·ρ1/R = 256 KiB and B2 = 768 KiB.
    let b = ByteSize::from_mib(1).bytes();
    let r_bps = 48e6;
    let ex = Example1::from_buffer(b as f64, r_bps, 12e6);
    let b1 = (b as f64 - ex.b2_bytes) as u64;
    let b2 = ex.b2_bytes as u64;
    assert_eq!((b1, b2), (262_144, 786_432));

    // Flow 0 idle (first packet far beyond the horizon), flow 1 a
    // greedy 2R CBR — the paper's "greedy flow keeps its share pinned
    // full". Zero headroom: all free space is holes.
    let link = Rate::from_mbps(48.0);
    let sources: Vec<Box<dyn Source>> = vec![
        Box::new(CbrSource::new(link, PKT, Time::from_secs(3600))),
        Box::new(CbrSource::greedy(link, PKT, 2)),
    ];
    let policy = BufferSharing::with_reserved(b, vec![b1, b2], 0);
    let router = Router::new(link, policy, Fifo::new(), sources);

    let mut tracer = Tracer::new(1 << 18);
    let end = Time::from_secs_f64(0.2);
    let res = router.run_with(Time::ZERO, end, 1, &mut tracer);
    assert_eq!(tracer.truncated(), 0, "ring buffer sized for the window");
    verify_trace(&tracer.to_jsonl()).expect("trace must pass its own schema check");

    // The greedy flow's backlog grows at A − R = R, i.e. R/8 bytes/s.
    let growth = r_bps / 8.0;
    let first_crossing = tracer
        .records()
        .find_map(|rec| match rec {
            TraceRecord::Threshold {
                t,
                flow: FlowId(1),
                up: true,
                ..
            } => Some(*t),
            _ => None,
        })
        .expect("greedy flow must cross its reserved share");
    // Crossing when q(t) first exceeds B2: t* = B2 / growth.
    let t_star = b2 as f64 / growth;
    let got = first_crossing.as_nanos() as f64 / 1e9;
    assert!(
        (got - t_star).abs() < 2e-3,
        "upward crossing at {got:.6}s, analysis predicts {t_star:.6}s"
    );

    // The self-limiting rule denies an above-threshold packet once
    // excess + len exceeds the remaining holes: with flow 0 idle and
    // zero headroom that is q > (B + B2 − len)/2.
    let q_deny = (b as f64 + b2 as f64 - PKT as f64) / 2.0;
    let (first_denial, denial_q) = tracer
        .records()
        .find_map(|rec| match rec {
            TraceRecord::Drop {
                t,
                flow: FlowId(1),
                reason: DropReason::NoSharedSpace,
                ..
            } => Some(*t),
            _ => None,
        })
        .map(|t| (t, q_deny))
        .expect("sharing must eventually refuse the greedy flow");
    let t_deny = denial_q / growth;
    let got_deny = first_denial.as_nanos() as f64 / 1e9;
    assert!(
        (got_deny - t_deny).abs() < 2e-3,
        "first headroom-denied drop at {got_deny:.6}s, analysis predicts {t_deny:.6}s"
    );
    // Order sanity: the crossing strictly precedes the denial, and the
    // gap matches the analysis (denial comes (q_deny − B2)/growth
    // later).
    assert!(first_crossing < first_denial);

    // The enqueue stream must show the occupancy actually sitting at
    // the denial point when drops begin (within one packet).
    let q_at_denial = tracer
        .records()
        .filter_map(|rec| match rec {
            TraceRecord::Enqueue {
                t,
                flow: FlowId(1),
                q,
                ..
            } if *t <= first_denial => Some(*q),
            _ => None,
        })
        .last()
        .expect("enqueues precede the first denial");
    assert!(
        (q_at_denial as f64 - q_deny).abs() <= PKT as f64,
        "occupancy at first denial is {q_at_denial}, analysis predicts {q_deny:.0}"
    );

    // And the statistics agree with the trace: every recorded drop is a
    // headroom denial of flow 1.
    let traced_drops = tracer
        .records()
        .filter(|r| matches!(r, TraceRecord::Drop { .. }))
        .count() as u64;
    let stat_drops: u64 = res.flows[1].drops_no_shared_space;
    assert_eq!(
        traced_drops, stat_drops,
        "trace and stats disagree on drops"
    );
}
