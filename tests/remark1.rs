//! Remark 1 at packet level: "if a flow exceeds its negotiated peak
//! rate, it will not be penalized excessively, i.e., it will have more
//! bits delivered (up to any time) than had it been a lower volume
//! conformant flow."
//!
//! The paper proves this with a green/red coloring argument: pretend
//! conformant (green) bits have priority, then swap colors so that at
//! least as many bits get through as there were conformant bits. The
//! router's optional `(σ, ρ)` meters implement exactly that coloring,
//! and these tests check the resulting inequality:
//!
//! ```text
//! delivered_bytes(T) + buffer ≥ green_offered_bytes(T)
//! ```
//!
//! (the buffer slack covers bits still queued at the horizon).

use qos_buffer_mgmt::core::flow::{Conformance, FlowId, FlowSpec};
use qos_buffer_mgmt::core::policy::PolicyKind;
use qos_buffer_mgmt::core::units::{ByteSize, Rate, Time};
use qos_buffer_mgmt::sched::Fifo;
use qos_buffer_mgmt::sim::Router;
use qos_buffer_mgmt::traffic::{build_source, table1, Source};

const LINK: Rate = Rate::from_bps(48_000_000);

fn metered_table1_run(buffer: u64, seed: u64) -> qos_buffer_mgmt::sim::SimResult {
    let specs = table1();
    let policy = PolicyKind::Threshold.build(buffer, LINK, &specs);
    let sources: Vec<Box<dyn Source>> = specs.iter().map(|s| build_source(s, seed)).collect();
    Router::new(LINK, policy, Box::new(Fifo::new()), sources)
        .with_meters(&specs)
        .run(Time::ZERO, Time::from_secs(10), seed)
}

/// The Remark-1 inequality holds for every flow — including the
/// aggressive ones whose red packets are dropped in bulk.
#[test]
fn delivered_at_least_green_offered() {
    let buffer = ByteSize::from_mib(2).bytes();
    for seed in 1..=3 {
        let res = metered_table1_run(buffer, seed);
        for (i, f) in res.flows.iter().enumerate() {
            assert!(
                f.delivered_bytes + buffer >= f.green_offered_bytes,
                "seed {seed} flow {i}: delivered {} + buffer < green offered {}",
                f.delivered_bytes,
                f.green_offered_bytes,
            );
        }
    }
}

/// Sanity on the coloring itself: conformant (shaped) flows are ~all
/// green; aggressive flows offer far more red than green.
#[test]
fn coloring_matches_flow_classes() {
    let res = metered_table1_run(ByteSize::from_mib(2).bytes(), 1);
    let specs = table1();
    for s in &specs {
        let f = &res.flows[s.id.index()];
        let green_frac = f.green_offered_bytes as f64 / f.offered_bytes.max(1) as f64;
        match s.class {
            Conformance::Conformant => assert!(
                green_frac > 0.99,
                "{}: shaped flow only {:.2}% green",
                s.id,
                green_frac * 100.0
            ),
            Conformance::Aggressive => assert!(
                green_frac < 0.7,
                "{}: aggressive flow {:.2}% green",
                s.id,
                green_frac * 100.0
            ),
            Conformance::ModeratelyNonConformant => {}
        }
    }
}

/// The sharper form of Remark 1 for aggressive flows: their *delivered*
/// volume exceeds their conformant sub-flow's volume — they profit from
/// excess sending, they are never penalized below the guarantee.
#[test]
fn aggressive_flows_deliver_more_than_their_conformant_subflow() {
    let res = metered_table1_run(ByteSize::from_mib(2).bytes(), 2);
    for s in table1()
        .iter()
        .filter(|s| s.class == Conformance::Aggressive)
    {
        let f = &res.flows[s.id.index()];
        assert!(
            f.delivered_bytes > f.green_offered_bytes,
            "{}: delivered {} ≤ conformant sub-flow {}",
            s.id,
            f.delivered_bytes,
            f.green_offered_bytes
        );
    }
}

/// Unmetered routers mark everything green (the default behaviour is
/// backward compatible).
#[test]
fn unmetered_runs_have_no_green_accounting() {
    let specs: Vec<FlowSpec> = table1();
    let policy = PolicyKind::Threshold.build(1 << 20, LINK, &specs);
    let sources: Vec<Box<dyn Source>> = specs.iter().map(|s| build_source(s, 1)).collect();
    let res = Router::new(LINK, policy, Box::new(Fifo::new()), sources).run(
        Time::ZERO,
        Time::from_secs(2),
        1,
    );
    for f in &res.flows {
        // No meters: on_color is called with green=true for every
        // packet, so green_offered == offered.
        assert_eq!(f.green_offered_bytes, f.offered_bytes);
        assert_eq!(f.green_delivered_bytes, f.delivered_bytes);
    }
    let _ = FlowId(0);
}
