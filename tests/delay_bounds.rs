//! The delay bounds of §1, verified at packet level: the analytic
//! guarantees from `qbm_core::analysis::delay` must dominate every
//! simulated packet delay.

use qos_buffer_mgmt::core::analysis::delay::{fifo_delay_bound, wfq_delay_bound};
use qos_buffer_mgmt::core::flow::Conformance;
use qos_buffer_mgmt::core::policy::PolicyKind;
use qos_buffer_mgmt::core::units::{ByteSize, Dur};
use qos_buffer_mgmt::sched::SchedKind;
use qos_buffer_mgmt::sim::{ExperimentConfig, PolicySpec};
use qos_buffer_mgmt::traffic::table1;

fn run(sched: SchedKind, buffer: u64, seed: u64) -> qos_buffer_mgmt::sim::SimResult {
    let cfg = ExperimentConfig {
        link_rate: qos_buffer_mgmt::sim::scenarios::LINK_RATE,
        buffer_bytes: buffer,
        specs: table1(),
        sched,
        policy: PolicySpec::Kind(PolicyKind::Threshold),
        warmup: Dur::from_secs(1),
        duration: Dur::from_secs(11),
        sojourns: Default::default(),
        stats: Default::default(),
        sources: Default::default(),
    };
    cfg.run_once(seed)
}

/// FIFO: every packet of every flow obeys the buffer-drain bound.
#[test]
fn fifo_delays_below_buffer_drain_bound() {
    let b = ByteSize::from_mib(1).bytes();
    let bound = fifo_delay_bound(b, qos_buffer_mgmt::sim::scenarios::LINK_RATE, 500);
    for seed in 1..=3 {
        let res = run(SchedKind::Fifo, b, seed);
        for (i, f) in res.flows.iter().enumerate() {
            assert!(
                f.delay_max_ns <= bound.as_nanos(),
                "seed {seed} flow {i}: {} ns above FIFO bound {} ns",
                f.delay_max_ns,
                bound.as_nanos()
            );
        }
    }
}

/// WFQ: every *conformant* (shaped) flow obeys its Parekh–Gallager
/// bound `σ/ρ + L/ρ + L/R` — the per-flow guarantee the paper trades
/// away. (Non-conformant flows have no bound: their arrivals exceed
/// the envelope the theorem assumes.)
#[test]
fn wfq_conformant_delays_below_parekh_gallager_bound() {
    let specs = table1();
    let b = ByteSize::from_mib(2).bytes();
    for seed in 1..=3 {
        let res = run(SchedKind::Wfq, b, seed);
        for s in specs.iter().filter(|s| s.class == Conformance::Conformant) {
            let bound = wfq_delay_bound(s, qos_buffer_mgmt::sim::scenarios::LINK_RATE, 500)
                .expect("reserved flow has a bound");
            let got = res.flows[s.id.index()].delay_max_ns;
            assert!(
                got <= bound.as_nanos(),
                "seed {seed} {}: max delay {} ns above PG bound {} ns",
                s.id,
                got,
                bound.as_nanos()
            );
        }
    }
}

/// The same holds under WF²Q+ (its delay bound is WFQ's) and EDF with
/// the PG budgets — the three sorting schedulers are interchangeable on
/// the guarantee, which is why the paper treats "WFQ" as the
/// representative of the class.
#[test]
fn wf2q_and_edf_meet_the_same_bounds() {
    let specs = table1();
    let b = ByteSize::from_mib(2).bytes();
    for sched in [SchedKind::Wf2q, SchedKind::Edf] {
        let res = run(sched.clone(), b, 2);
        for s in specs.iter().filter(|s| s.class == Conformance::Conformant) {
            let bound =
                wfq_delay_bound(s, qos_buffer_mgmt::sim::scenarios::LINK_RATE, 500).unwrap();
            let got = res.flows[s.id.index()].delay_max_ns;
            assert!(
                got <= bound.as_nanos(),
                "{}: {} max delay {} ns above bound {} ns",
                sched.label(),
                s.id,
                got,
                bound.as_nanos()
            );
        }
    }
}
