//! Property-based cross-validation: the §2 closed-form analysis against
//! the packet-level simulator, over randomized flow sets. These are the
//! repo's strongest correctness checks — two independent
//! implementations (algebra in qbm-core, events in qbm-sim) must agree.

use proptest::prelude::*;
use qos_buffer_mgmt::core::admission::{admissible, AdmissionOutcome, Discipline, LinkConfig};
use qos_buffer_mgmt::core::flow::{Conformance, FlowId, FlowSpec};
use qos_buffer_mgmt::core::policy::PolicyKind;
use qos_buffer_mgmt::core::units::{Dur, Rate, Time};
use qos_buffer_mgmt::sched::SchedKind;
use qos_buffer_mgmt::sim::{ExperimentConfig, PolicySpec, Router};
use qos_buffer_mgmt::traffic::{CbrSource, Source};

const LINK: Rate = Rate::from_bps(48_000_000);

/// Random mixes of shaped (conformant) flows plus one aggressive CBR
/// blast. If Eq. 9 admits the set for the configured buffer, the
/// simulator must show zero conformant loss.
fn flow_set(rates_mbps: &[f64], buckets_kib: &[u64]) -> Vec<FlowSpec> {
    let n = rates_mbps.len().min(buckets_kib.len());
    let mut specs: Vec<FlowSpec> = (0..n)
        .map(|i| {
            FlowSpec::builder(FlowId(i as u32))
                .peak(Rate::from_mbps(40.0))
                .avg(Rate::from_mbps(rates_mbps[i]))
                .bucket(buckets_kib[i] * 1024)
                .token_rate(Rate::from_mbps(rates_mbps[i]))
                .class(Conformance::Conformant)
                .adaptive(true)
                .build()
        })
        .collect();
    // One unregulated blast with a minimal reservation.
    specs.push(
        FlowSpec::builder(FlowId(n as u32))
            .peak(Rate::from_mbps(40.0))
            .avg(Rate::from_mbps(20.0))
            .bucket(10 * 1024)
            .token_rate(Rate::from_kbps(100.0))
            .mean_burst(200 * 1024)
            .class(Conformance::Aggressive)
            .build(),
    );
    specs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Eq. 9 admission ⟹ lossless conformant service (packet level).
    #[test]
    fn admitted_sets_are_lossless(
        rates in proptest::collection::vec(0.5f64..6.0, 2..5),
        buckets in proptest::collection::vec(10u64..80, 2..5),
        seed in 0u64..1000,
    ) {
        let specs = flow_set(&rates, &buckets);
        let needed = qos_buffer_mgmt::core::admission::fifo_required_buffer(LINK, &specs);
        prop_assume!(needed.is_finite());
        let buffer = needed.ceil() as u64;
        // Double-check the admission test agrees at this exact buffer.
        prop_assert_eq!(
            admissible(LinkConfig::new(LINK, buffer), Discipline::FifoThreshold, &specs),
            AdmissionOutcome::Accepted
        );
        let cfg = ExperimentConfig {
            link_rate: LINK,
            buffer_bytes: buffer,
            specs: specs.clone(),
            sched: SchedKind::Fifo,
            policy: PolicySpec::Kind(PolicyKind::Threshold),
            warmup: Dur::from_millis(500),
            duration: Dur::from_secs(3),
        sojourns: Default::default(),
        stats: Default::default(),
            sources: Default::default(),
        };
        let res = cfg.run_once(seed);
        let loss = res.class_loss_ratio(&specs, Conformance::Conformant);
        prop_assert_eq!(loss, 0.0, "conformant loss {} at Eq.9 buffer", loss);
    }

    /// Proposition 1 necessity at packet level: a CBR flow at rate ρ
    /// against a greedy blast keeps exactly its guarantee — throughput
    /// within packetization error of ρ, no loss.
    #[test]
    fn prop1_packet_level(rho_mbps in 2.0f64..36.0, seed in 0u64..100) {
        let specs = vec![
            FlowSpec::builder(FlowId(0))
                .token_rate(Rate::from_mbps(rho_mbps))
                .bucket(1000)
                .build(),
            FlowSpec::builder(FlowId(1))
                .token_rate(Rate::from_mbps(1.0))
                .bucket(1000)
                .class(Conformance::Aggressive)
                .build(),
        ];
        let b = 500_000u64;
        let policy = PolicyKind::Threshold.build(b, LINK, &specs);
        let sources: Vec<Box<dyn Source>> = vec![
            Box::new(CbrSource::new(Rate::from_mbps(rho_mbps), 500, Time::ZERO)),
            Box::new(CbrSource::greedy(LINK, 500, 2)),
        ];
        let router = Router::new(
            LINK,
            policy,
            Box::new(qos_buffer_mgmt::sched::Fifo::new()),
            sources,
        );
        let res = router.run(Time::from_secs(2), Time::from_secs(6), seed);
        prop_assert_eq!(res.flows[0].dropped_pkts, 0);
        let thr = res.flow_throughput_bps(FlowId(0));
        let rel = (thr - rho_mbps * 1e6).abs() / (rho_mbps * 1e6);
        prop_assert!(rel < 0.05, "delivered {} of reserved {}", thr, rho_mbps * 1e6);
    }

    /// WFQ needs only Σσ (Eq. 6) — the same randomized conformant sets
    /// are lossless under WFQ with the *smaller* buffer plus headroom
    /// for the in-flight packets the fluid model ignores (footnote 4:
    /// "we ignore packetization": one max packet per flow).
    #[test]
    fn wfq_lossless_at_sum_sigma(
        rates in proptest::collection::vec(0.5f64..6.0, 2..5),
        buckets in proptest::collection::vec(10u64..80, 2..5),
        seed in 0u64..1000,
    ) {
        let specs = flow_set(&rates, &buckets);
        let sum_sigma: u64 = specs.iter().map(|s| s.bucket_bytes).sum();
        let pktization = 500 * specs.len() as u64;
        let cfg = ExperimentConfig {
            link_rate: LINK,
            buffer_bytes: sum_sigma + pktization,
            specs: specs.clone(),
            sched: SchedKind::Wfq,
            policy: PolicySpec::Kind(PolicyKind::Threshold),
            warmup: Dur::from_millis(500),
            duration: Dur::from_secs(3),
        sojourns: Default::default(),
        stats: Default::default(),
            sources: Default::default(),
        };
        let res = cfg.run_once(seed);
        let loss = res.class_loss_ratio(&specs, Conformance::Conformant);
        prop_assert_eq!(loss, 0.0, "conformant loss {} under WFQ at Σσ", loss);
    }
}
