//! Reproducibility is load-bearing for the experiment harness: the same
//! (configuration, seed) pair must give bit-identical statistics across
//! every scheduler × policy combination, and different seeds must give
//! different traces.

use qos_buffer_mgmt::core::policy::PolicyKind;
use qos_buffer_mgmt::core::units::{ByteSize, Dur};
use qos_buffer_mgmt::obs::{verify_trace, Tracer};
use qos_buffer_mgmt::sched::SchedKind;
use qos_buffer_mgmt::sim::scenarios::{case1_grouping, plan_hybrid, LINK_RATE};
use qos_buffer_mgmt::sim::{Campaign, ExperimentConfig, PolicySpec};
use qos_buffer_mgmt::traffic::{table1, table2};

fn cfg(sched: SchedKind, policy: PolicySpec) -> ExperimentConfig {
    ExperimentConfig {
        link_rate: LINK_RATE,
        buffer_bytes: ByteSize::from_mib(1).bytes(),
        specs: table1(),
        sched,
        policy,
        warmup: Dur::from_secs(1),
        duration: Dur::from_secs(4),
        sojourns: Default::default(),
        stats: Default::default(),
        sources: Default::default(),
    }
}

fn all_combinations() -> Vec<(String, ExperimentConfig)> {
    let specs = table1();
    let plan = plan_hybrid(&specs, &case1_grouping(), ByteSize::from_mib(1).bytes());
    let h = ByteSize::from_kib(256).bytes();
    let scheds = vec![
        ("fifo", SchedKind::Fifo),
        ("wfq", SchedKind::Wfq),
        ("drr", SchedKind::Drr),
        ("vclock", SchedKind::VirtualClock),
        ("edf", SchedKind::Edf),
        ("wf2q", SchedKind::Wf2q),
        (
            "hybrid",
            SchedKind::Hybrid {
                assignment: plan.grouping.assignment.clone(),
                queue_rates_bps: plan.queue_rates_bps.clone(),
            },
        ),
    ];
    let policies = vec![
        ("none", PolicySpec::Kind(PolicyKind::None)),
        ("thresh", PolicySpec::Kind(PolicyKind::Threshold)),
        (
            "sharing",
            PolicySpec::Kind(PolicyKind::Sharing { headroom_bytes: h }),
        ),
        (
            "adaptive",
            PolicySpec::Kind(PolicyKind::AdaptiveSharing { headroom_bytes: h }),
        ),
        (
            "dyn-thresh",
            PolicySpec::Kind(PolicyKind::DynamicThreshold {
                alpha_num: 1,
                alpha_den: 1,
            }),
        ),
        ("red", PolicySpec::Kind(PolicyKind::Red { seed: 3 })),
        ("fred", PolicySpec::Kind(PolicyKind::Fred { seed: 3 })),
        (
            "pbs",
            PolicySpec::Kind(PolicyKind::PartialSharing {
                threshold_permille: 800,
            }),
        ),
    ];
    let mut out = Vec::new();
    for (sn, s) in &scheds {
        for (pn, p) in &policies {
            out.push((format!("{sn}+{pn}"), cfg(s.clone(), p.clone())));
        }
    }
    out
}

#[test]
fn identical_seed_identical_result_all_combinations() {
    for (name, c) in all_combinations() {
        let a = c.run_once(17);
        let b = c.run_once(17);
        assert_eq!(a.flows, b.flows, "{name}: same seed diverged");
    }
}

#[test]
fn different_seeds_differ() {
    let c = cfg(SchedKind::Fifo, PolicySpec::Kind(PolicyKind::Threshold));
    let a = c.run_once(1);
    let b = c.run_once(2);
    assert_ne!(a.flows, b.flows, "different seeds produced identical runs");
}

#[test]
fn parallel_runner_equals_sequential() {
    let c = cfg(SchedKind::Wfq, PolicySpec::Kind(PolicyKind::Threshold));
    let multi = c.run_many(100, 4);
    for (i, run) in multi.runs.iter().enumerate() {
        let solo = c.run_once(100 + i as u64);
        assert_eq!(run.flows, solo.flows, "parallel seed {} diverged", 100 + i);
    }
}

#[test]
fn campaign_results_are_thread_count_invariant() {
    // The Table-2 workload (30 flows) over a two-point campaign: the
    // sharded runner must produce byte-identical per-cell results and
    // byte-identical merged results whether the grid runs on 1 worker
    // or 8 — seeds are a pure function of the cell coordinates and
    // results are scattered back by index.
    let mut points = Vec::new();
    for buffer_mib in [1u64, 2] {
        points.push(ExperimentConfig {
            link_rate: LINK_RATE,
            buffer_bytes: ByteSize::from_mib(buffer_mib).bytes(),
            specs: table2(),
            sched: SchedKind::Fifo,
            policy: PolicySpec::Kind(PolicyKind::Threshold),
            warmup: Dur::from_secs(1),
            duration: Dur::from_secs(3),
            sojourns: Default::default(),
            stats: Default::default(),
            sources: Default::default(),
        });
    }
    let run_with = |threads: usize| {
        let mut campaign = Campaign::new(&points);
        campaign.replications = 3;
        campaign.campaign_seed = 7;
        campaign.threads = threads;
        (campaign.run(), campaign.run_merged())
    };
    let (grid1, merged1) = run_with(1);
    let (grid8, merged8) = run_with(8);
    assert_eq!(merged1, merged8, "merged results depend on thread count");
    for (p, (a, b)) in grid1.iter().zip(&grid8).enumerate() {
        for (r, (x, y)) in a.runs.iter().zip(&b.runs).enumerate() {
            assert_eq!(x, y, "point {p} replication {r} diverged across threads");
        }
    }
}

#[test]
fn traced_campaign_is_thread_count_invariant_byte_for_byte() {
    // The acceptance bar for the observability layer: attach a tracer
    // to every cell of a sharded campaign and the *merged JSONL text* —
    // not just the statistics — must be byte-identical whether the grid
    // runs on 1 worker or 8. Records carry simulated time only, cells
    // are stitched in cell order, and observers are scattered back by
    // index, so the worker count can leave no fingerprint.
    let points = vec![
        cfg(SchedKind::Fifo, PolicySpec::Kind(PolicyKind::Threshold)),
        cfg(
            SchedKind::Fifo,
            PolicySpec::Kind(PolicyKind::Sharing {
                headroom_bytes: ByteSize::from_kib(256).bytes(),
            }),
        ),
    ];
    let trace_with = |threads: usize| {
        let mut campaign = Campaign::new(&points);
        campaign.replications = 2;
        campaign.campaign_seed = 11;
        campaign.threads = threads;
        let (_, tracers) = campaign.run_observed(|_| Tracer::new(4096));
        let cells: Vec<(u64, Tracer)> = tracers
            .into_iter()
            .enumerate()
            .map(|(idx, t)| {
                (
                    campaign.cell_seed(idx / campaign.replications, idx % campaign.replications),
                    t,
                )
            })
            .collect();
        Tracer::merged_jsonl(&cells)
    };
    let solo = trace_with(1);
    let sharded = trace_with(8);
    assert_eq!(solo, sharded, "merged trace text depends on thread count");
    let summary = verify_trace(&solo).expect("merged campaign trace must pass the schema check");
    assert_eq!(summary.cells, 4, "2 points x 2 replications");
    assert!(summary.arrivals > 0 && summary.departures > 0);
}

/// FNV-1a-style 64-bit digest (the multiplier deviates from the
/// canonical FNV prime; what matters is that it matches the constant
/// the golden values below were captured with).
fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[test]
fn golden_fixed_seed_statistics_snapshot() {
    // Captured from the pre-overhaul simulator (BinaryHeap event queue,
    // boxed dyn sources) at seed 17. The indexed-timer/enum-source
    // rewrite must reproduce these numbers exactly — any drift means
    // the event ordering contract or a source stream changed.
    let t1 = cfg(SchedKind::Fifo, PolicySpec::Kind(PolicyKind::Threshold));
    let res = t1.run_once(17);
    let golden: [(u64, u64, u64, u64, u128, u64); 9] = [
        (1157, 0, 1157, 578_500, 31_226_551_577, 63_580_058),
        (1036, 0, 1029, 514_500, 26_761_207_216, 50_204_371),
        (984, 0, 997, 498_500, 29_665_318_869, 59_828_521),
        (6000, 0, 5971, 2_985_500, 154_254_483_416, 64_944_745),
        (6000, 0, 5971, 2_985_500, 154_296_029_118, 64_921_414),
        (6000, 0, 5971, 2_985_500, 153_967_896_214, 64_927_359),
        (4639, 3028, 1611, 805_500, 64_519_890_181, 64_881_464),
        (2745, 1121, 1624, 812_000, 36_003_297_640, 60_632_910),
        (13789, 5203, 8597, 4_298_500, 279_221_220_118, 64_918_583),
    ];
    assert_eq!(res.flows.len(), golden.len());
    for (i, (f, g)) in res.flows.iter().zip(&golden).enumerate() {
        let got = (
            f.offered_pkts,
            f.dropped_pkts,
            f.delivered_pkts,
            f.delivered_bytes,
            f.delay_sum_ns,
            f.delay_max_ns,
        );
        assert_eq!(got, *g, "flow {i} drifted from golden snapshot");
    }
    // Full-struct digest (covers every field, including drop-reason
    // split, delay histogram and green counters).
    assert_eq!(
        fnv64(&format!("{:?}", res.flows)),
        0x0a63_84fc_3883_16c4,
        "Table-1 full-stats digest drifted"
    );

    // Table-2 workload (30 flows) over a shorter window.
    let mut t2 = t1.clone();
    t2.specs = table2();
    t2.duration = Dur::from_secs(3);
    let res2 = t2.run_once(17);
    let off: u64 = res2.flows.iter().map(|f| f.offered_pkts).sum();
    let drop: u64 = res2.flows.iter().map(|f| f.dropped_pkts).sum();
    let del: u64 = res2.flows.iter().map(|f| f.delivered_pkts).sum();
    let dsum: u128 = res2.flows.iter().map(|f| f.delay_sum_ns).sum();
    assert_eq!(
        (off, drop, del, dsum),
        (26_896, 3206, 23_948, 1_140_191_127_386),
        "Table-2 aggregate counters drifted"
    );
    assert_eq!(
        fnv64(&format!("{:?}", res2.flows)),
        0x04fd_0205_07c6_16cb,
        "Table-2 full-stats digest drifted"
    );
}

#[test]
fn golden_fixed_seed_trace_snapshot() {
    // The JSONL event trace is part of the determinism contract too:
    // same capture as above, digested as text. Catches ordering changes
    // that happen to leave the aggregate statistics untouched (e.g. two
    // same-instant arrivals swapping).
    let t1 = cfg(SchedKind::Fifo, PolicySpec::Kind(PolicyKind::Threshold));
    let mut tracer = Tracer::new(1 << 16);
    let _ = t1.run_once_with(17, &mut tracer);
    let jsonl = tracer.to_jsonl();
    assert_eq!(jsonl.lines().count(), 65_537, "trace line count drifted");
    assert_eq!(jsonl.len(), 3_948_239, "trace byte length drifted");
    assert_eq!(fnv64(&jsonl), 0x5e41_65ee_823e_9179, "trace digest drifted");
}

#[test]
fn indexed_timers_match_reference_heap_end_to_end() {
    // Differential check across the whole pipeline: the pre-overhaul
    // path (boxed dyn sources + BinaryHeap event core) and the new
    // default (enum sources + IndexedTimers) must agree byte-for-byte
    // on every scheduler × policy combination and on the 30-flow
    // Table-2 workload.
    for (name, c) in all_combinations() {
        let new_path = c.run_once(17);
        let old_path = c.run_once_reference(17);
        assert_eq!(
            new_path.flows, old_path.flows,
            "{name}: indexed timers diverged from reference heap"
        );
    }
    let mut t2 = cfg(SchedKind::Fifo, PolicySpec::Kind(PolicyKind::Threshold));
    t2.specs = table2();
    t2.duration = Dur::from_secs(3);
    for seed in [1u64, 17, 99] {
        assert_eq!(
            t2.run_once(seed).flows,
            t2.run_once_reference(seed).flows,
            "table2 seed {seed}: indexed timers diverged from reference heap"
        );
    }
}

#[test]
fn fixed_point_schedulers_match_float_references_end_to_end() {
    // The acceptance bar of the Q32.32 virtual-time rewrite: swap every
    // scheduler for its retained float reference (same sources, same
    // policy, same event core — only the virtual-time arithmetic
    // differs) and the statistics must stay byte-identical across all
    // scheduler × policy combinations. Both sides quantize every
    // elementary virtual-time term through the same integer
    // constructors, so this is exact equality, not a tolerance check.
    for (name, c) in all_combinations() {
        let fixed = c.run_once(17);
        let float_ref = c.run_once_sched_reference(17);
        assert_eq!(
            fixed.flows, float_ref.flows,
            "{name}: fixed-point scheduler diverged from float reference"
        );
    }
    // The 30-flow Table-2 workload, across the schedulers that actually
    // exercise virtual time (the hybrid gets a simple modular grouping —
    // the Table-1 case-study grouping doesn't apply to 30 flows).
    let specs = table2();
    let queues = 4usize;
    let assignment: Vec<usize> = (0..specs.len()).map(|f| f % queues).collect();
    let mut queue_rates_bps = vec![0u64; queues];
    for s in &specs {
        queue_rates_bps[s.id.index() % queues] += s.token_rate.bps();
    }
    let scheds = [
        SchedKind::Wfq,
        SchedKind::Wf2q,
        SchedKind::VirtualClock,
        SchedKind::Hybrid {
            assignment,
            queue_rates_bps,
        },
    ];
    for sched in scheds {
        let mut c = cfg(sched, PolicySpec::Kind(PolicyKind::Threshold));
        c.specs = table2();
        c.duration = Dur::from_secs(3);
        for seed in [1u64, 17] {
            assert_eq!(
                c.run_once(seed).flows,
                c.run_once_sched_reference(seed).flows,
                "table2 {} seed {seed}: fixed-point diverged from float reference",
                c.sched.label()
            );
        }
    }
}

#[test]
fn pooled_campaign_with_mixed_flow_counts_is_thread_count_invariant() {
    // Arena acceptance: campaign workers recycle lane/event-core
    // buffers across cells, including across *different flow counts*
    // (the arena must resize, not assume a fixed width). A grid mixing
    // the 9-flow Table-1 and 30-flow Table-2 workloads must produce
    // byte-identical per-cell results at 1 worker (one arena reused by
    // every cell) and 8 workers (one arena each), and both must match
    // the non-pooled `run_once` path.
    let mut t2 = cfg(SchedKind::Wfq, PolicySpec::Kind(PolicyKind::Threshold));
    t2.specs = table2();
    t2.duration = Dur::from_secs(3);
    let points = vec![
        cfg(SchedKind::Wfq, PolicySpec::Kind(PolicyKind::Threshold)),
        t2,
        cfg(
            SchedKind::Fifo,
            PolicySpec::Kind(PolicyKind::Sharing {
                headroom_bytes: ByteSize::from_kib(256).bytes(),
            }),
        ),
    ];
    let run_with = |threads: usize| {
        let mut campaign = Campaign::new(&points);
        campaign.replications = 2;
        campaign.campaign_seed = 23;
        campaign.threads = threads;
        campaign.run()
    };
    let grid1 = run_with(1);
    let grid8 = run_with(8);
    for (p, (a, b)) in grid1.iter().zip(&grid8).enumerate() {
        for (r, (x, y)) in a.runs.iter().zip(&b.runs).enumerate() {
            assert_eq!(x, y, "point {p} replication {r} diverged across threads");
            let campaign = {
                let mut c = Campaign::new(&points);
                c.replications = 2;
                c.campaign_seed = 23;
                c
            };
            let solo = points[p].run_once(campaign.cell_seed(p, r));
            assert_eq!(
                x, &solo,
                "point {p} replication {r}: pooled cell diverged from fresh run_once"
            );
        }
    }
}

#[test]
fn path_fabric_reproduces_pre_refactor_tandem_goldens() {
    // Captured from the pre-fabric tandem runner (hop-by-hop
    // run-to-completion with full-trace replay) on a 3-hop
    // 48/44/40 Mb/s threshold line at seed 17. The epoch/mailbox
    // fabric the line now runs on must reproduce both the per-hop
    // statistics and the per-hop JSONL traces byte-for-byte.
    use qos_buffer_mgmt::core::units::{Rate, Time};
    use qos_buffer_mgmt::sim::tandem::{run_line, run_line_observed, Hop};
    use qos_buffer_mgmt::sim::Router;
    let specs = table1();
    let hops: Vec<Hop> = [48.0, 44.0, 40.0]
        .iter()
        .map(|&m| Hop {
            link_rate: Rate::from_mbps(m),
            buffer_bytes: 1 << 20,
            sched: SchedKind::Fifo,
            policy: PolicySpec::Kind(PolicyKind::Threshold),
        })
        .collect();
    let (warmup, end) = (Time::from_secs(1), Time::from_secs(5));
    let res = run_line(&hops, &specs, 17, warmup, end);
    let stats_golden = [
        0xd2cd17612077d565u64,
        0x9edc29f704242eef,
        0x7c050d4f1443efdc,
    ];
    for (i, (r, g)) in res.iter().zip(&stats_golden).enumerate() {
        assert_eq!(
            fnv64(&format!("{r:?}")),
            *g,
            "hop {i} statistics drifted from pre-fabric goldens"
        );
    }
    let mut tracers = vec![
        Tracer::new(1 << 20),
        Tracer::new(1 << 20),
        Tracer::new(1 << 20),
    ];
    let observed = run_line_observed(
        3,
        &specs,
        17,
        warmup,
        end,
        |i, sources| {
            let hop = &hops[i];
            let policy = hop.policy.build(hop.buffer_bytes, hop.link_rate, &specs);
            let sched = hop.sched.build(hop.link_rate, &specs);
            Router::new(hop.link_rate, policy, sched, sources)
        },
        &mut tracers,
    );
    assert_eq!(res, observed, "observed tandem run diverges from plain run");
    let trace_golden = [
        (0x5e3a4b9dc2eb4771u64, 11_469_759usize),
        (0x33362c6ab7977db5, 9_823_109),
        (0xc948036c59621700, 9_363_045),
    ];
    for (i, (t, (g, len))) in tracers.iter().zip(&trace_golden).enumerate() {
        let jsonl = t.to_jsonl();
        assert_eq!(jsonl.len(), *len, "hop {i} trace length drifted");
        assert_eq!(
            fnv64(&jsonl),
            *g,
            "hop {i} trace drifted from pre-fabric goldens"
        );
    }
}

/// Run a topology fabric with per-link link-dim tracers; returns the
/// statistics debug digest and the merged per-link trace text.
fn fabric_digests(
    fabric: qos_buffer_mgmt::sim::Fabric,
    seed: u64,
    threads: usize,
) -> (u64, String) {
    use qos_buffer_mgmt::core::units::Time;
    let mut tracers = vec![Tracer::new(1 << 16).with_link_dim(); fabric.n_links()];
    let res = fabric.run_observed(
        seed,
        Time::from_secs(1),
        Time::from_secs(4),
        threads,
        &mut tracers,
    );
    (
        fnv64(&format!("{res:?}")),
        Tracer::merged_links_jsonl(&tracers),
    )
}

#[test]
fn tree_fabric_golden_and_shard_thread_invariant() {
    // A 2-AP × 2-subscriber aggregation tree: merged statistics and
    // the merged per-link trace must be byte-identical at 1 vs 8 shard
    // threads, and must match the golden capture (so the schedule
    // itself, not just its invariance, is pinned).
    use qos_buffer_mgmt::core::units::Rate;
    use qos_buffer_mgmt::sim::scenarios::{aggregation_tree, LinkProfile, LINK_RATE};
    let specs = &table1()[..3];
    let rates = [LINK_RATE, Rate::from_mbps(24.0), Rate::from_mbps(16.0)];
    let build = || aggregation_tree(2, 2, specs, rates, &LinkProfile::default(), 7);
    let (stats1, trace1) = fabric_digests(build(), 7, 1);
    let (stats8, trace8) = fabric_digests(build(), 7, 8);
    assert_eq!(stats1, stats8, "tree stats depend on shard threads");
    assert_eq!(trace1, trace8, "tree trace depends on shard threads");
    verify_trace(&trace1).expect("merged tree trace must pass the schema check");
    assert_eq!(stats1, 0x6ddc_2dae_2186_2606, "tree stats digest drifted");
    assert_eq!(
        fnv64(&trace1),
        0x1d0d_4375_fa52_6238,
        "tree trace digest drifted"
    );
}

#[test]
fn incast_fabric_golden_and_shard_thread_invariant() {
    use qos_buffer_mgmt::core::units::Rate;
    use qos_buffer_mgmt::sim::scenarios::{incast_fanin, LinkProfile, LINK_RATE};
    let specs = &table1()[..2];
    let build = || {
        incast_fanin(
            3,
            specs,
            LINK_RATE,
            Rate::from_mbps(40.0),
            &LinkProfile::default(),
            11,
        )
    };
    let (stats1, trace1) = fabric_digests(build(), 11, 1);
    let (stats8, trace8) = fabric_digests(build(), 11, 8);
    assert_eq!(stats1, stats8, "incast stats depend on shard threads");
    assert_eq!(trace1, trace8, "incast trace depends on shard threads");
    verify_trace(&trace1).expect("merged incast trace must pass the schema check");
    assert_eq!(stats1, 0xc017_4c3c_fe1b_3279, "incast stats digest drifted");
    assert_eq!(
        fnv64(&trace1),
        0x9750_6948_2927_4546,
        "incast trace digest drifted"
    );
}

#[test]
fn subscriber_tree_fabric_golden_and_shard_thread_invariant() {
    // The ISP-scale scenario family at its smallest shape (10² flows,
    // 4 sites × 5 APs): merged statistics and the merged per-link
    // trace must be byte-identical at 1 vs 8 shard threads and match
    // the golden capture.
    use qos_buffer_mgmt::sim::scenarios::{subscriber_tree, LinkProfile, SubscriberTreeShape};
    let shape = SubscriberTreeShape::for_flows(100);
    let build = || subscriber_tree(shape, &LinkProfile::default(), 7);
    let (stats1, trace1) = fabric_digests(build(), 7, 1);
    let (stats8, trace8) = fabric_digests(build(), 7, 8);
    assert_eq!(stats1, stats8, "subscriber stats depend on shard threads");
    assert_eq!(trace1, trace8, "subscriber trace depends on shard threads");
    verify_trace(&trace1).expect("merged subscriber trace must pass the schema check");
    assert_eq!(
        stats1, 0x50bb_4d29_8fe2_e8a5,
        "subscriber stats digest drifted"
    );
    assert_eq!(
        fnv64(&trace1),
        0x140b_1a5f_96c0_ed3b,
        "subscriber trace digest drifted"
    );
}

#[test]
fn subscriber_tree_scales_to_ten_thousand_flows_deterministically() {
    // The 10⁴-flow shape (25 sites × 20 APs, 526 links) over a short
    // horizon: statistics only (a full trace would dwarf the suite),
    // pinned against a golden digest and shard-thread invariant.
    use qos_buffer_mgmt::core::units::Time;
    use qos_buffer_mgmt::sim::scenarios::{subscriber_tree, LinkProfile, SubscriberTreeShape};
    let shape = SubscriberTreeShape::for_flows(10_000);
    let run = |threads: usize| {
        let fabric = subscriber_tree(shape, &LinkProfile::default(), 5);
        let res = fabric.run(
            5,
            Time::from_secs_f64(0.05),
            Time::from_secs_f64(0.10),
            threads,
        );
        fnv64(&format!("{res:?}"))
    };
    let d1 = run(1);
    assert_eq!(d1, run(8), "10k-flow stats depend on shard threads");
    assert_eq!(
        d1, 0xe0fb_df99_869c_99bb,
        "10k-flow subscriber stats digest drifted"
    );
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]

    // The mailbox-handoff ordering invariant, fuzzed over topology
    // shape, seed and epoch length: for ANY aggregation tree, the
    // merged statistics and the merged per-link trace text are
    // byte-identical whether level-mates advance on 1, 2 or 8 shard
    // threads — the fabric's schedule is a pure function of
    // (topology, seed), never of the thread interleaving.
    #[test]
    fn tree_fabric_shard_invariance_holds_for_any_shape(
        aps in 1usize..4,
        subs in 1usize..3,
        k in 1usize..4,
        seed in 0u64..1000,
        epoch_idx in 0usize..3,
    ) {
        let epoch_ms = [50u64, 250, 1000][epoch_idx];
        use qos_buffer_mgmt::core::units::{Dur, Rate, Time};
        use qos_buffer_mgmt::sim::scenarios::{aggregation_tree, LinkProfile, LINK_RATE};
        let specs = table1();
        let specs = &specs[..k];
        let rates = [LINK_RATE, Rate::from_mbps(24.0), Rate::from_mbps(16.0)];
        let run = |threads: usize| {
            let fabric = aggregation_tree(aps, subs, specs, rates, &LinkProfile::default(), seed)
                .with_epoch(Dur::from_millis(epoch_ms));
            let mut tracers = vec![Tracer::new(4096).with_link_dim(); fabric.n_links()];
            let res = fabric.run_observed(
                seed,
                Time::from_secs_f64(0.1),
                Time::from_secs_f64(0.6),
                threads,
                &mut tracers,
            );
            (res, Tracer::merged_links_jsonl(&tracers))
        };
        let (res1, trace1) = run(1);
        let (res2, trace2) = run(2);
        let (res8, trace8) = run(8);
        proptest::prop_assert_eq!(&res1, &res2, "1 vs 2 shard threads diverged");
        proptest::prop_assert_eq!(&res1, &res8, "1 vs 8 shard threads diverged");
        proptest::prop_assert_eq!(&trace1, &trace2, "trace 1 vs 2 shard threads diverged");
        proptest::prop_assert_eq!(&trace1, &trace8, "trace 1 vs 8 shard threads diverged");
    }
}

#[test]
fn every_combination_moves_traffic() {
    // Sanity floor: each scheduler × policy pairing delivers a
    // substantial fraction of the link over the window.
    for (name, c) in all_combinations() {
        let res = c.run_once(3);
        let util = res.aggregate_throughput_bps() / 48e6;
        assert!(
            util > 0.5,
            "{name}: only {:.0}% utilization — wiring problem?",
            util * 100.0
        );
    }
}

#[test]
fn closed_loop_incast_golden_and_shard_thread_invariant() {
    // The feedback path's determinism bar: an incast of AIMD senders
    // whose control loop closes across the fabric (departure/drop
    // signals from the aggregation link route back to the ingress
    // links) must produce byte-identical statistics AND a byte-identical
    // merged feedback-enabled (schema v2) trace at 1 vs 8 shard
    // threads, and match the golden capture.
    use qos_buffer_mgmt::core::units::{Rate, Time};
    use qos_buffer_mgmt::sim::scenarios::{incast_closed_loop, LinkProfile};
    let run = |threads: usize| {
        let fabric = incast_closed_loop(4, Rate::from_mbps(40.0), &LinkProfile::default());
        let mut tracers =
            vec![Tracer::new(1 << 14).with_link_dim().with_feedback(); fabric.n_links()];
        let res = fabric.run_observed(
            3,
            Time::from_secs_f64(0.1),
            Time::from_secs(1),
            threads,
            &mut tracers,
        );
        (
            fnv64(&format!("{res:?}")),
            Tracer::merged_links_jsonl(&tracers),
        )
    };
    let (stats1, trace1) = run(1);
    let (stats8, trace8) = run(8);
    assert_eq!(stats1, stats8, "closed-loop stats depend on shard threads");
    assert_eq!(trace1, trace8, "closed-loop trace depends on shard threads");
    let summary =
        verify_trace(&trace1).expect("merged closed-loop trace must pass the schema check");
    assert!(
        summary.feedback > 0,
        "closed-loop trace recorded no fb events"
    );
    assert!(
        trace1.starts_with("{\"schema\":\"qbm-trace\",\"version\":2,"),
        "feedback-enabled trace must carry the v2 header"
    );
    assert_eq!(
        stats1, 0x4857_5c6a_81fe_90f7,
        "closed-loop stats digest drifted"
    );
    assert_eq!(
        fnv64(&trace1),
        0xa7dd_9629_c9b4_68ff,
        "closed-loop trace digest drifted"
    );
}

#[test]
fn closed_loop_incast_polices_aggressive_flow() {
    // The paper's qualitative claim, closed-loop: a non-responsive
    // (floor-windowed) sender sharing a buffer with responsive AIMD
    // senders starves them under naive FIFO admission, while the
    // threshold policy confines it toward its reserved share and keeps
    // every responsive flow alive. Deterministic, so the shares are
    // exact reproducible values, not statistical bounds.
    use qos_buffer_mgmt::core::policy::PolicyKind;
    use qos_buffer_mgmt::core::units::{ByteSize, Rate, Time};
    use qos_buffer_mgmt::sim::scenarios::{incast_closed_loop, LinkProfile};
    let senders = 4usize;
    let share_of = |policy: PolicySpec| {
        let profile = LinkProfile {
            buffer_bytes: ByteSize::from_kib(32).bytes(),
            policy,
            ..LinkProfile::default()
        };
        let res = incast_closed_loop(senders, Rate::from_mbps(8.0), &profile).run(
            3,
            Time::from_secs_f64(0.1),
            Time::from_secs(2),
            1,
        );
        let agg = &res[senders];
        let total: u64 = agg.flows.iter().map(|f| f.delivered_bytes).sum();
        let weakest = agg
            .flows
            .iter()
            .skip(1)
            .map(|f| f.delivered_bytes)
            .min()
            .unwrap();
        (agg.flows[0].delivered_bytes as f64 / total as f64, weakest)
    };
    let (fifo_share, fifo_weakest) = share_of(PolicySpec::Kind(PolicyKind::None));
    let (thresh_share, thresh_weakest) = share_of(PolicySpec::Kind(PolicyKind::Threshold));
    assert!(
        fifo_share > 0.9,
        "naive FIFO should let the aggressive flow capture the link (got {fifo_share:.3})"
    );
    assert!(
        thresh_share < 0.8,
        "threshold policy failed to confine the aggressive flow (got {thresh_share:.3})"
    );
    assert!(
        thresh_share < fifo_share - 0.1,
        "drop feedback had no policy-dependent effect ({thresh_share:.3} vs {fifo_share:.3})"
    );
    // Responsive senders survive under thresh (each keeps a real share
    // of its fair 475 kB) but collapse to near-zero under naive FIFO.
    assert!(
        thresh_weakest > 100_000,
        "threshold policy starved a responsive sender ({thresh_weakest} bytes)"
    );
    assert!(
        fifo_weakest < 10_000,
        "expected responsive senders to starve under naive FIFO ({fifo_weakest} bytes)"
    );
}

#[test]
fn source_kind_coverage_every_variant_emits_deterministically() {
    // Every `SourceKind` variant, driven directly: two pulls from
    // identically-seeded twins must agree, and the emission stream must
    // be non-trivial. This is the determinism suite's per-variant floor
    // (qbm-lint's `exhaustive-source` cross-check requires each variant
    // to appear here); the scheduler/policy interactions above exercise
    // them through full runs.
    use qos_buffer_mgmt::core::units::{Rate, Time};
    use qos_buffer_mgmt::traffic::{
        AimdConfig, AimdSource, CbrSource, Emission, Feedback, OnOffSource, PoissonSource,
        ShapedSource, Source, SourceKind, TraceSource,
    };
    let rate = Rate::from_mbps(8.0);
    let trace = vec![
        Emission {
            time: Time(10),
            len: 500,
        },
        Emission {
            time: Time(20),
            len: 500,
        },
    ];
    let build = || -> Vec<SourceKind> {
        vec![
            SourceKind::Cbr(CbrSource::new(rate, 500, Time::ZERO)),
            SourceKind::OnOff(OnOffSource::new(rate, Rate::from_mbps(2.0), 15_000, 500, 7)),
            SourceKind::Poisson(PoissonSource::new(rate, 500, 7)),
            SourceKind::Trace(TraceSource::new(trace.clone())),
            SourceKind::Regulated(ShapedSource::new(
                OnOffSource::new(rate, Rate::from_mbps(2.0), 15_000, 500, 7),
                15_000,
                Rate::from_mbps(2.0),
            )),
            SourceKind::Aimd(AimdSource::new(AimdConfig::default())),
            SourceKind::Dyn(Box::new(CbrSource::new(rate, 500, Time::ZERO))),
        ]
    };
    let pull = |mut sources: Vec<SourceKind>| -> Vec<Vec<Emission>> {
        sources
            .iter_mut()
            .map(|s| {
                let out: Vec<Emission> = (0..8).map_while(|_| s.next_emission()).collect();
                // Exercise the feedback leg too: open-loop variants
                // must shrug it off, the AIMD variant must accept it.
                let _ = s.on_feedback(
                    Time::from_secs(1),
                    Feedback::Delivered {
                        bytes: 500,
                        delay: qos_buffer_mgmt::core::units::Dur(1000),
                    },
                );
                out
            })
            .collect()
    };
    let a = pull(build());
    let b = pull(build());
    assert_eq!(a, b, "identically-seeded SourceKind twins diverged");
    for (i, stream) in a.iter().enumerate() {
        assert!(!stream.is_empty(), "variant {i} emitted nothing");
    }
}
