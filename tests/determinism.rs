//! Reproducibility is load-bearing for the experiment harness: the same
//! (configuration, seed) pair must give bit-identical statistics across
//! every scheduler × policy combination, and different seeds must give
//! different traces.

use qos_buffer_mgmt::core::policy::PolicyKind;
use qos_buffer_mgmt::core::units::{ByteSize, Dur};
use qos_buffer_mgmt::obs::{verify_trace, Tracer};
use qos_buffer_mgmt::sched::SchedKind;
use qos_buffer_mgmt::sim::scenarios::{case1_grouping, plan_hybrid, LINK_RATE};
use qos_buffer_mgmt::sim::{Campaign, ExperimentConfig, PolicySpec};
use qos_buffer_mgmt::traffic::{table1, table2};

fn cfg(sched: SchedKind, policy: PolicySpec) -> ExperimentConfig {
    ExperimentConfig {
        link_rate: LINK_RATE,
        buffer_bytes: ByteSize::from_mib(1).bytes(),
        specs: table1(),
        sched,
        policy,
        warmup: Dur::from_secs(1),
        duration: Dur::from_secs(4),
        sojourns: Default::default(),
    }
}

fn all_combinations() -> Vec<(String, ExperimentConfig)> {
    let specs = table1();
    let plan = plan_hybrid(&specs, &case1_grouping(), ByteSize::from_mib(1).bytes());
    let h = ByteSize::from_kib(256).bytes();
    let scheds = vec![
        ("fifo", SchedKind::Fifo),
        ("wfq", SchedKind::Wfq),
        ("drr", SchedKind::Drr),
        ("vclock", SchedKind::VirtualClock),
        ("edf", SchedKind::Edf),
        ("wf2q", SchedKind::Wf2q),
        (
            "hybrid",
            SchedKind::Hybrid {
                assignment: plan.grouping.assignment.clone(),
                queue_rates_bps: plan.queue_rates_bps.clone(),
            },
        ),
    ];
    let policies = vec![
        ("none", PolicySpec::Kind(PolicyKind::None)),
        ("thresh", PolicySpec::Kind(PolicyKind::Threshold)),
        (
            "sharing",
            PolicySpec::Kind(PolicyKind::Sharing { headroom_bytes: h }),
        ),
        (
            "adaptive",
            PolicySpec::Kind(PolicyKind::AdaptiveSharing { headroom_bytes: h }),
        ),
        (
            "dyn-thresh",
            PolicySpec::Kind(PolicyKind::DynamicThreshold {
                alpha_num: 1,
                alpha_den: 1,
            }),
        ),
        ("red", PolicySpec::Kind(PolicyKind::Red { seed: 3 })),
        ("fred", PolicySpec::Kind(PolicyKind::Fred { seed: 3 })),
        (
            "pbs",
            PolicySpec::Kind(PolicyKind::PartialSharing {
                threshold_permille: 800,
            }),
        ),
    ];
    let mut out = Vec::new();
    for (sn, s) in &scheds {
        for (pn, p) in &policies {
            out.push((format!("{sn}+{pn}"), cfg(s.clone(), p.clone())));
        }
    }
    out
}

#[test]
fn identical_seed_identical_result_all_combinations() {
    for (name, c) in all_combinations() {
        let a = c.run_once(17);
        let b = c.run_once(17);
        assert_eq!(a.flows, b.flows, "{name}: same seed diverged");
    }
}

#[test]
fn different_seeds_differ() {
    let c = cfg(SchedKind::Fifo, PolicySpec::Kind(PolicyKind::Threshold));
    let a = c.run_once(1);
    let b = c.run_once(2);
    assert_ne!(a.flows, b.flows, "different seeds produced identical runs");
}

#[test]
fn parallel_runner_equals_sequential() {
    let c = cfg(SchedKind::Wfq, PolicySpec::Kind(PolicyKind::Threshold));
    let multi = c.run_many(100, 4);
    for (i, run) in multi.runs.iter().enumerate() {
        let solo = c.run_once(100 + i as u64);
        assert_eq!(run.flows, solo.flows, "parallel seed {} diverged", 100 + i);
    }
}

#[test]
fn campaign_results_are_thread_count_invariant() {
    // The Table-2 workload (30 flows) over a two-point campaign: the
    // sharded runner must produce byte-identical per-cell results and
    // byte-identical merged results whether the grid runs on 1 worker
    // or 8 — seeds are a pure function of the cell coordinates and
    // results are scattered back by index.
    let mut points = Vec::new();
    for buffer_mib in [1u64, 2] {
        points.push(ExperimentConfig {
            link_rate: LINK_RATE,
            buffer_bytes: ByteSize::from_mib(buffer_mib).bytes(),
            specs: table2(),
            sched: SchedKind::Fifo,
            policy: PolicySpec::Kind(PolicyKind::Threshold),
            warmup: Dur::from_secs(1),
            duration: Dur::from_secs(3),
            sojourns: Default::default(),
        });
    }
    let run_with = |threads: usize| {
        let mut campaign = Campaign::new(&points);
        campaign.replications = 3;
        campaign.campaign_seed = 7;
        campaign.threads = threads;
        (campaign.run(), campaign.run_merged())
    };
    let (grid1, merged1) = run_with(1);
    let (grid8, merged8) = run_with(8);
    assert_eq!(merged1, merged8, "merged results depend on thread count");
    for (p, (a, b)) in grid1.iter().zip(&grid8).enumerate() {
        for (r, (x, y)) in a.runs.iter().zip(&b.runs).enumerate() {
            assert_eq!(x, y, "point {p} replication {r} diverged across threads");
        }
    }
}

#[test]
fn traced_campaign_is_thread_count_invariant_byte_for_byte() {
    // The acceptance bar for the observability layer: attach a tracer
    // to every cell of a sharded campaign and the *merged JSONL text* —
    // not just the statistics — must be byte-identical whether the grid
    // runs on 1 worker or 8. Records carry simulated time only, cells
    // are stitched in cell order, and observers are scattered back by
    // index, so the worker count can leave no fingerprint.
    let points = vec![
        cfg(SchedKind::Fifo, PolicySpec::Kind(PolicyKind::Threshold)),
        cfg(
            SchedKind::Fifo,
            PolicySpec::Kind(PolicyKind::Sharing {
                headroom_bytes: ByteSize::from_kib(256).bytes(),
            }),
        ),
    ];
    let trace_with = |threads: usize| {
        let mut campaign = Campaign::new(&points);
        campaign.replications = 2;
        campaign.campaign_seed = 11;
        campaign.threads = threads;
        let (_, tracers) = campaign.run_observed(|_| Tracer::new(4096));
        let cells: Vec<(u64, Tracer)> = tracers
            .into_iter()
            .enumerate()
            .map(|(idx, t)| {
                (
                    campaign.cell_seed(idx / campaign.replications, idx % campaign.replications),
                    t,
                )
            })
            .collect();
        Tracer::merged_jsonl(&cells)
    };
    let solo = trace_with(1);
    let sharded = trace_with(8);
    assert_eq!(solo, sharded, "merged trace text depends on thread count");
    let summary = verify_trace(&solo).expect("merged campaign trace must pass the schema check");
    assert_eq!(summary.cells, 4, "2 points x 2 replications");
    assert!(summary.arrivals > 0 && summary.departures > 0);
}

#[test]
fn every_combination_moves_traffic() {
    // Sanity floor: each scheduler × policy pairing delivers a
    // substantial fraction of the link over the window.
    for (name, c) in all_combinations() {
        let res = c.run_once(3);
        let util = res.aggregate_throughput_bps() / 48e6;
        assert!(
            util > 0.5,
            "{name}: only {:.0}% utilization — wiring problem?",
            util * 100.0
        );
    }
}
