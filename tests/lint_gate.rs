//! The static-analysis gate: tier-1 `cargo test -q` runs the same
//! `qbm-lint` pass as the standalone binary and the CI `lint` job, so a
//! determinism or unit-discipline regression fails the test suite, not
//! just a side channel.

#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = qbm_lint::run_repo(root).expect("lint walk failed");
    // Guard against the walker silently scanning nothing (e.g. after a
    // directory move): the workspace has far more than 40 library files.
    assert!(
        report.files_scanned >= 40,
        "lint walker found only {} files — walk roots broken?",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "qbm-lint found {} violation(s):\n{}",
        report.findings.len(),
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn suppressions_stay_accounted() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = qbm_lint::run_repo(root).expect("lint walk failed");
    // Every silenced match must come from a known channel, and the
    // allow-surface should only change deliberately: a jump here means
    // someone is papering over findings instead of fixing them.
    for s in &report.suppressions {
        assert!(
            s.via == "pragma" || s.via == "allowlist",
            "unknown suppression channel {:?}",
            s.via
        );
    }
    let pragmas = report
        .suppressions
        .iter()
        .filter(|s| s.via == "pragma")
        .count();
    assert!(
        pragmas <= 10,
        "{pragmas} inline qbm-lint pragmas — audit before growing the allow-surface"
    );
}
