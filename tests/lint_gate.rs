//! The static-analysis gate: tier-1 `cargo test -q` runs the same
//! `qbm-lint` pass as the standalone binary and the CI `lint` job, so a
//! determinism or unit-discipline regression fails the test suite, not
//! just a side channel.
//!
//! The gate is baseline-aware: findings recorded in the committed
//! `lint-baseline.tsv` (triaged legacy debt, today all `hot-path-index`
//! sites) are accepted, *new* findings fail, and stale baseline records
//! also fail — the baseline may only ever shrink behind the code.

use std::path::Path;

fn gated_report(root: &Path) -> (qbm_lint::Report, usize) {
    let mut report = qbm_lint::run_repo(root).expect("lint walk failed");
    let baseline = std::fs::read_to_string(root.join("lint-baseline.tsv"))
        .expect("lint-baseline.tsv is committed at the workspace root");
    let stale = qbm_lint::emit::apply_baseline(&mut report, &baseline);
    (report, stale)
}

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (report, stale) = gated_report(root);
    // Guard against the walker silently scanning nothing (e.g. after a
    // directory move): the workspace has far more than 40 library files.
    assert!(
        report.files_scanned >= 40,
        "lint walker found only {} files — walk roots broken?",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "qbm-lint found {} new violation(s):\n{}",
        report.findings.len(),
        report
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(
        stale, 0,
        "{stale} stale lint-baseline.tsv record(s) match nothing — \
         regenerate with `cargo run -p qbm-lint -- --write-baseline`"
    );
}

#[test]
fn suppressions_stay_accounted() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let (report, _) = gated_report(root);
    // Every silenced match must come from a known channel, and the
    // allow-surface should only change deliberately: a jump here means
    // someone is papering over findings instead of fixing them.
    for s in &report.suppressions {
        assert!(
            matches!(s.via, "pragma" | "allowlist" | "cold" | "baseline"),
            "unknown suppression channel {:?}",
            s.via
        );
    }
    let count = |via: &str| report.suppressions.iter().filter(|s| s.via == via).count();
    let pragmas = count("pragma");
    assert!(
        pragmas <= 16,
        "{pragmas} inline qbm-lint pragmas — audit before growing the allow-surface"
    );
    let cold = count("cold");
    assert!(
        cold <= 8,
        "{cold} cold-pruned functions — audit before widening the cold surface"
    );
    // The baseline holds the triaged hot-path-index debt; it shrinks as
    // sites are rewritten, and never grows (new findings fail above).
    // 179 = 170 from the scheduler-scale work + 9 feedback-path sites
    // (`apply_feedback`, `delay_arrival`, the `advance` delivery leg) —
    // all per-flow SoA lane accesses of the same shape as the rest of
    // the baseline.
    assert!(
        count("baseline") <= 179,
        "baseline suppression count grew — regenerate lint-baseline.tsv only after triage"
    );
}

#[test]
fn rules_md_matches_the_registry() {
    // RULES.md is generated from `rules::REGISTRY`; a hand edit or a
    // registry change without regeneration is drift.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let committed = std::fs::read_to_string(root.join("RULES.md"))
        .expect("RULES.md is committed at the workspace root");
    assert_eq!(
        committed,
        qbm_lint::emit::rules_md(),
        "RULES.md drifted — regenerate with `cargo run -p qbm-lint -- --rules-md > RULES.md`"
    );
}
