//! Fixture-corpus harness: every lint rule has a true-positive
//! (`flag.rs`) and a near-miss (`clean.rs`) fixture under
//! `crates/lint/tests/fixtures/<rule-id>/`, and this test drives the
//! scanner over each pair. A rule whose flag fixture goes quiet has
//! silently stopped firing; a rule whose clean fixture trips has grown
//! a false-positive — both fail tier-1.
//!
//! Fixture files are virtual mini-workspaces, not compiled Rust. `//@`
//! marker lines split one fixture into sections:
//!
//! * `//@ file: <repo-relative-path>` — a source file at that path
//!   (rules are path-scoped, so the virtual path selects the rule);
//! * `//@ suite` / `//@ differential` / `//@ rules-md` — reference
//!   text for the exhaustiveness cross-checks ([`qbm_lint::RefSet`]);
//! * `//@ rules-md live` / `//@ fixtures live` — substitute the real
//!   generated docs / the real fixture-directory listing;
//! * `//@ fixtures: id id …` — a literal fixture-ID list.

use qbm_lint::{analyze_workspace, emit, rules, scan_file, RefSet};
use std::fs;
use std::path::{Path, PathBuf};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/lint/tests/fixtures")
}

#[derive(Default)]
struct Fixture {
    files: Vec<(String, String)>,
    refs: RefSet,
}

/// Parse the `//@` section markers of one fixture file.
fn parse_fixture(path: &Path) -> Fixture {
    let text = fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()));
    let mut fx = Fixture::default();
    // Which section body is currently accumulating.
    enum Into {
        Nothing,
        File(usize),
        Suite,
        Differential,
        RulesMd,
    }
    let mut into = Into::Nothing;
    for line in text.lines() {
        if let Some(marker) = line.trim_start().strip_prefix("//@") {
            let marker = marker.trim();
            into = if let Some(rel) = marker.strip_prefix("file:") {
                fx.files.push((rel.trim().to_string(), String::new()));
                Into::File(fx.files.len() - 1)
            } else if marker == "suite" {
                fx.refs.suite = Some(String::new());
                Into::Suite
            } else if marker == "differential" {
                fx.refs.differential = Some(String::new());
                Into::Differential
            } else if marker == "rules-md" {
                fx.refs.rules_md = Some(String::new());
                Into::RulesMd
            } else if marker == "rules-md live" {
                fx.refs.rules_md = Some(emit::rules_md());
                Into::Nothing
            } else if marker == "fixtures live" {
                let mut ids: Vec<String> = fs::read_dir(fixtures_root())
                    .expect("fixtures dir")
                    .flatten()
                    .filter(|e| e.path().is_dir())
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .collect();
                ids.sort();
                fx.refs.fixture_ids = Some(ids);
                Into::Nothing
            } else if let Some(ids) = marker.strip_prefix("fixtures:") {
                fx.refs.fixture_ids = Some(ids.split_whitespace().map(|s| s.to_string()).collect());
                Into::Nothing
            } else {
                panic!(
                    "unknown fixture marker `//@ {marker}` in {}",
                    path.display()
                );
            };
            continue;
        }
        let buf = match into {
            Into::Nothing => continue,
            Into::File(i) => &mut fx.files[i].1,
            Into::Suite => fx.refs.suite.as_mut().unwrap(),
            Into::Differential => fx.refs.differential.as_mut().unwrap(),
            Into::RulesMd => fx.refs.rules_md.as_mut().unwrap(),
        };
        buf.push_str(line);
        buf.push('\n');
    }
    fx
}

/// Run the per-file rules and the workspace analysis over a fixture and
/// collect the set of rule IDs that fired (findings only — suppressions
/// are the *absence* of a finding).
fn rules_fired(fx: &Fixture) -> Vec<&'static str> {
    let mut out = Vec::new();
    for (rel, src) in &fx.files {
        out.extend(scan_file(rel, src).findings.into_iter().map(|f| f.rule));
    }
    out.extend(
        analyze_workspace(&fx.files, &fx.refs)
            .findings
            .into_iter()
            .map(|f| f.rule),
    );
    out
}

/// The corpus exists for every registry entry, the flag fixture trips
/// exactly its rule, and the clean near-miss stays quiet on it.
#[test]
fn every_rule_fires_on_flag_and_spares_clean() {
    for m in rules::REGISTRY {
        let dir = fixtures_root().join(m.id);
        assert!(
            dir.is_dir(),
            "rule `{}` has no fixture directory {}",
            m.id,
            dir.display()
        );
        let flagged = rules_fired(&parse_fixture(&dir.join("flag.rs")));
        assert!(
            flagged.contains(&m.id),
            "fixture {}/flag.rs does not trip `{}` (fired: {flagged:?})",
            m.id,
            m.id
        );
        let cleaned = rules_fired(&parse_fixture(&dir.join("clean.rs")));
        assert!(
            !cleaned.contains(&m.id),
            "fixture {}/clean.rs trips `{}`",
            m.id,
            m.id
        );
    }
}

/// No orphan directories: the corpus layout mirrors the registry both
/// ways (the `exhaustive-rule-doc` rule checks registry → fixtures; this
/// checks fixtures → registry).
#[test]
fn fixture_directories_match_the_registry() {
    let mut dirs: Vec<String> = fs::read_dir(fixtures_root())
        .expect("fixtures dir")
        .flatten()
        .filter(|e| e.path().is_dir())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    dirs.sort();
    let mut ids: Vec<String> = rules::REGISTRY.iter().map(|m| m.id.to_string()).collect();
    ids.sort();
    assert_eq!(dirs, ids, "fixture dirs drifted from rules::REGISTRY");
}

/// Each fixture pair is exactly `{flag.rs, clean.rs}`.
#[test]
fn fixture_pairs_are_complete() {
    for m in rules::REGISTRY {
        for name in ["flag.rs", "clean.rs"] {
            let p = fixtures_root().join(m.id).join(name);
            assert!(p.is_file(), "missing fixture {}", p.display());
        }
    }
}
