//! Minimal vendored property-testing harness exposing the subset of the
//! `proptest` API this workspace uses.
//!
//! Supported surface:
//! - `proptest! { #![proptest_config(ProptestConfig::with_cases(N))] #[test] fn f(x in strat, ..) {..} }`
//! - strategies: integer and float `Range`s, tuples of strategies, and
//!   `proptest::collection::vec(elem, len_range)`
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//!
//! Inputs are drawn from a deterministic RNG seeded from the test name,
//! so failures reproduce across runs and machines. There is no
//! shrinking: a failing case panics with the assertion message; the
//! drawn values should be included in that message by the caller (the
//! existing tests already do).

#![warn(missing_docs)]

/// Test-runner configuration and RNG.
pub mod test_runner {
    use rand::SplitMix64;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        /// Upstream's default of 256 cases.
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic RNG used to draw test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: SplitMix64,
    }

    impl TestRng {
        /// Seeded from a label (the test name), so every test gets its
        /// own reproducible stream.
        pub fn deterministic(label: &str) -> TestRng {
            // FNV-1a over the label.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: SplitMix64::new(h),
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform draw in `[0, 1)` with 53-bit precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, span)` (`span > 0`) via widening
        /// multiply.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

/// Input-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// A recipe for drawing random values of one type.
    pub trait Strategy {
        /// The produced value type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + rng.next_f64() as $t * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// Strategy producing a `Vec` whose length is drawn from `size` and
    /// whose elements are drawn from `elem`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `Vec` strategy with length in `size` and elements from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` consumer needs in scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(
                        module_path!(),
                        "::",
                        stringify!($name)
                    ));
                for __case in 0..config.cases {
                    let _ = __case;
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Assert within a property body (no shrinking; plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert within a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert within a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("bounds");
        for _ in 0..10_000 {
            let x = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&x));
            let f = Strategy::generate(&(-0.5f64..0.5), &mut rng);
            assert!((-0.5..0.5).contains(&f));
            let i = Strategy::generate(&(-5i32..7), &mut rng);
            assert!((-5..7).contains(&i));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::test_runner::TestRng::deterministic("vec");
        let strat = crate::collection::vec((0u32..4, 1u32..2000), 1..400);
        for _ in 0..500 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((1..400).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 4);
                assert!((1..2000).contains(&b));
            }
        }
    }

    #[test]
    fn deterministic_per_label() {
        let mut a = crate::test_runner::TestRng::deterministic("same");
        let mut b = crate::test_runner::TestRng::deterministic("same");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: draws, assume-skips, asserts.
        #[test]
        fn macro_end_to_end(x in 1u64..1000, ys in crate::collection::vec(0.0f64..1.0, 0..8)) {
            prop_assume!(x % 7 != 0);
            prop_assert!(x >= 1);
            prop_assert_ne!(x % 7, 0);
            for y in ys {
                prop_assert!((0.0..1.0).contains(&y));
            }
            prop_assert_eq!(x / 1000, 0);
        }
    }
}
