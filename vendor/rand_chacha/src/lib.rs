//! Vendored ChaCha8 random number generator.
//!
//! A genuine ChaCha stream cipher core (8 double-rounds) driving the
//! vendored [`rand`] traits. The keystream layout follows RFC 8439's
//! state ordering with a 64-bit block counter. Output streams are
//! deterministic per seed on every platform — the property the
//! simulator's reproducibility guarantees rest on — though they are not
//! bit-identical to the upstream `rand_chacha` crate (no consumer in
//! this workspace depends on upstream streams).

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const WORDS_PER_BLOCK: usize = 16;

/// ChaCha with 8 double-rounds — the fast variant `rand` exposes as
/// `ChaCha8Rng`, statistically strong far beyond what a discrete-event
/// simulator needs.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Cipher input state: constants ‖ key ‖ counter ‖ nonce.
    state: [u32; WORDS_PER_BLOCK],
    /// Current keystream block.
    block: [u32; WORDS_PER_BLOCK],
    /// Next unread word in `block` (WORDS_PER_BLOCK = exhausted).
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (out, (a, b)) in self.block.iter_mut().zip(x.iter().zip(&self.state)) {
            *out = a.wrapping_add(*b);
        }
        // 64-bit block counter in words 12–13.
        let counter = (self.state[12] as u64 | (self.state[13] as u64) << 32).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= WORDS_PER_BLOCK {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

#[inline(always)]
fn quarter(x: &mut [u32; WORDS_PER_BLOCK], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut state = [0u32; WORDS_PER_BLOCK];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Counter (12–13) and nonce (14–15) start at zero.
        ChaCha8Rng {
            state,
            block: [0; WORDS_PER_BLOCK],
            index: WORDS_PER_BLOCK,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn reproducible_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_f64_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn counter_advances_across_blocks() {
        // Draw more than one 16-word block and check no 64-word window
        // repeats (the counter must be advancing).
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn word_boundary_independence() {
        // u64 draws equal pairs of u32 draws in little-endian order.
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let x = a.next_u64();
        let lo = b.next_u32() as u64;
        let hi = b.next_u32() as u64;
        assert_eq!(x, lo | (hi << 32));
    }
}
