//! Minimal vendored benchmark harness exposing the subset of the
//! `criterion` API this workspace's benches use.
//!
//! Measurement model: per bench point, one timed warmup call estimates
//! the per-iteration cost, then iterations filling a fixed wall-clock
//! budget (default 200 ms, `QBM_BENCH_BUDGET_MS` overrides) are timed
//! in several equal batches and the **fastest batch mean** is reported.
//! Interference (a neighbor stealing the core, a frequency dip) only
//! ever inflates a batch, so the minimum is the noise-robust estimator
//! of the true cost — important on shared single-core runners, where a
//! single-batch mean can swing by tens of percent between runs. That
//! trades criterion's statistical machinery for a bounded,
//! dependency-free harness; the numbers are stable enough for the
//! relative comparisons the benches make (per-op cost across
//! schedulers/policies, monomorphized vs boxed dispatch).
//!
//! Results are printed to stdout and kept on the [`Criterion`] value so
//! a hand-written `main` can export them (see `dispatch_overhead`).

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// One measured bench point.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Group name (`benchmark_group` argument).
    pub group: String,
    /// Bench id within the group (`BenchmarkId` rendering).
    pub id: String,
    /// Mean wall-clock time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Iterations measured (excluding the warmup call).
    pub iters: u64,
    /// Elements per iteration, when declared via [`Throughput`].
    pub elements: Option<u64>,
}

impl BenchResult {
    /// Throughput in elements/second, when declared.
    pub fn elems_per_sec(&self) -> Option<f64> {
        self.elements
            .map(|n| n as f64 / (self.mean_ns / 1e9))
            .filter(|r| r.is_finite())
    }
}

/// Declared per-iteration work, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The iteration processes this many logical elements.
    Elements(u64),
}

/// Identifier for one bench point: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// Compose from a function name and a displayed parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            rendered: format!("{function_name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// Times one closure; handed to the bench body by `bench_*`.
pub struct Bencher {
    budget_ns: u64,
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measure `f`: fill the budget with equal batches of calls and
    /// report the fastest batch mean (see module docs).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Timed warmup call: estimates cost and warms caches.
        let t0 = Instant::now();
        black_box(f());
        let est = t0.elapsed().as_nanos().max(1) as u64;

        const BATCHES: u64 = 5;
        let n = ((self.budget_ns / BATCHES) / est).clamp(1, 1_000_000);
        let mut best = f64::INFINITY;
        let mut iters = 0;
        for _ in 0..BATCHES {
            let t1 = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let mean = t1.elapsed().as_nanos() as f64 / n as f64;
            best = best.min(mean);
            iters += n;
        }
        self.mean_ns = best.max(f64::MIN_POSITIVE);
        self.iters = iters;
    }
}

/// A named group of related bench points.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; this harness sizes runs by
    /// wall-clock budget, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare per-iteration work for subsequent bench points.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnOnce(&mut Bencher, &I),
    {
        let rendered = id.to_string();
        let mut b = self.criterion.bencher();
        f(&mut b, input);
        self.record(rendered, b);
        self
    }

    /// Measure `f`, labelled by `id`.
    pub fn bench_function<D: Display, F>(&mut self, id: D, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let rendered = id.to_string();
        let mut b = self.criterion.bencher();
        f(&mut b);
        self.record(rendered, b);
        self
    }

    /// Measure two closures as an interleaved pair (extension beyond
    /// the upstream criterion API): batches alternate A,B,A,B,… so
    /// slow machine-speed drift — seconds-scale frequency dips or a
    /// noisy neighbor on a shared runner — hits both sides of an A/B
    /// comparison instead of whichever happened to be timed second.
    /// Each side still reports its fastest batch mean. Records one
    /// [`BenchResult`] per side, `a` first.
    pub fn bench_pair<FA, FB>(
        &mut self,
        id_a: BenchmarkId,
        mut a: FA,
        id_b: BenchmarkId,
        mut b: FB,
    ) -> &mut Self
    where
        FA: FnMut(),
        FB: FnMut(),
    {
        const BATCHES: u64 = 5;
        // Timed warmup call per side: estimates cost and warms caches.
        let t = Instant::now();
        a();
        let est_a = t.elapsed().as_nanos().max(1) as u64;
        let t = Instant::now();
        b();
        let est_b = t.elapsed().as_nanos().max(1) as u64;

        let budget = self.criterion.budget_ns / (2 * BATCHES);
        let n_a = (budget / est_a).clamp(1, 1_000_000);
        let n_b = (budget / est_b).clamp(1, 1_000_000);
        let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..BATCHES {
            let t = Instant::now();
            for _ in 0..n_a {
                a();
            }
            best_a = best_a.min(t.elapsed().as_nanos() as f64 / n_a as f64);
            let t = Instant::now();
            for _ in 0..n_b {
                b();
            }
            best_b = best_b.min(t.elapsed().as_nanos() as f64 / n_b as f64);
        }
        for (id, best, n) in [(id_a, best_a, n_a), (id_b, best_b, n_b)] {
            let bencher = Bencher {
                budget_ns: 0,
                mean_ns: best.max(f64::MIN_POSITIVE),
                iters: n * BATCHES,
            };
            self.record(id.to_string(), bencher);
        }
        self
    }

    /// End the group (kept for API compatibility; results were already
    /// recorded per bench point).
    pub fn finish(self) {}

    fn record(&mut self, id: String, b: Bencher) {
        let result = BenchResult {
            group: self.name.clone(),
            id,
            mean_ns: b.mean_ns,
            iters: b.iters,
            elements: self.throughput.map(|Throughput::Elements(n)| n),
        };
        let line = match result.elems_per_sec() {
            Some(rate) => format!(
                "{}/{:<28} time: {:>12.1} ns/iter  thrpt: {:>14.0} elem/s  (n={})",
                result.group, result.id, result.mean_ns, rate, result.iters
            ),
            None => format!(
                "{}/{:<28} time: {:>12.1} ns/iter  (n={})",
                result.group, result.id, result.mean_ns, result.iters
            ),
        };
        println!("{line}");
        self.criterion.results.push(result);
    }
}

/// Entry point: owns settings and accumulated results.
pub struct Criterion {
    budget_ns: u64,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let budget_ms = std::env::var("QBM_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(200);
        Criterion {
            budget_ns: budget_ms.saturating_mul(1_000_000).max(1),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Start a named group of bench points.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
        }
    }

    /// All results measured so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn bencher(&self) -> Bencher {
        Bencher {
            budget_ns: self.budget_ns,
            mean_ns: 0.0,
            iters: 0,
        }
    }
}

/// Bundle bench functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        std::env::set_var("QBM_BENCH_BUDGET_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).map(black_box).sum::<u64>())
        });
        g.bench_function("plain", |b| b.iter(|| black_box(21u64) * 2));
        g.finish();
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].id, "sum/64");
        assert!(c.results()[0].mean_ns > 0.0);
        assert!(c.results()[0].elems_per_sec().unwrap() > 0.0);
        assert_eq!(c.results()[1].elements, Some(1));
    }

    #[test]
    fn benchmark_id_renders_function_slash_param() {
        assert_eq!(BenchmarkId::new("fifo", 1000).to_string(), "fifo/1000");
    }
}
