//! Minimal vendored subset of the `rand` 0.9 API.
//!
//! The build environment has no network access and no registry cache,
//! so the workspace vendors the small slice of `rand` it actually uses:
//! [`RngCore`], the [`Rng`] extension trait with `random::<T>()` /
//! `random_range`, and [`SeedableRng`] with the SplitMix64-based
//! `seed_from_u64` expansion (same construction upstream uses, so seed
//! material is well mixed even for small consecutive seeds).
//!
//! Determinism matters more than matching upstream streams bit-for-bit:
//! every consumer in this workspace only relies on *reproducibility per
//! seed* plus sound statistical behaviour, both of which hold here.

#![warn(missing_docs)]

/// A source of uniformly random bits.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG (the `rand` 0.9
/// `StandardUniform` distribution, reduced to the types this workspace
/// samples).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution
    /// (floats are uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform `u64` in `[low, high)` via rejection-free widening
    /// multiply (Lemire). Panics on an empty range.
    fn random_range(&mut self, range: core::ops::Range<u64>) -> u64
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed byte array type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it through SplitMix64 (the
    /// same scheme upstream `rand` uses, so nearby integer seeds give
    /// unrelated streams).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — the seed-expansion PRNG (public so sibling vendored
/// crates and the simulator's seed-derivation scheme can reuse it).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `state`.
    pub fn new(state: u64) -> SplitMix64 {
        SplitMix64 { state }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (SplitMix64::next_u64(self) >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference output for seed 1234567 (from the SplitMix64
        // reference implementation).
        let mut sm = SplitMix64::new(1234567);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(a, sm2.next_u64());
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut sm = SplitMix64::new(42);
        for _ in 0..10_000 {
            let x: f64 = sm.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut sm = SplitMix64::new(7);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| sm.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut sm = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = sm.random_range(10..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut sm = SplitMix64::new(3);
        let mut buf = [0u8; 13];
        sm.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
