//! Closed-loop incast (repo extension): the fan-in of
//! `topology_incast`, but with sources that *react* — each sender runs
//! an AIMD congestion window fed by per-packet feedback (delivered or
//! dropped-with-cause) routed back from the shared aggregator through
//! the fabric's deterministic mailbox path. One sender is
//! non-responsive (a floor on its window keeps it blasting); the rest
//! are well-behaved AIMD flows.
//!
//! The question the paper cannot ask with open-loop sources: does the
//! threshold rule still isolate flows when traffic fights back? Under
//! naive FIFO admission the non-responsive flow fills the shared
//! buffer, every responsive flow sees a wall of loss, halves its way
//! to the floor, and starves. Threshold admission converts the same
//! buffer into per-flow drop signals: the aggressive flow is clipped
//! at its reservation and the responsive windows stay open.
//!
//! ```text
//! cargo run --release --example closed_loop_incast
//! ```

use qos_buffer_mgmt::core::flow::FlowId;
use qos_buffer_mgmt::core::policy::PolicyKind;
use qos_buffer_mgmt::core::units::{ByteSize, Rate, Time};
use qos_buffer_mgmt::sim::scenarios::{incast_closed_loop, LinkProfile};
use qos_buffer_mgmt::sim::PolicySpec;

fn main() {
    let senders = 4usize;
    let agg_rate = Rate::from_mbps(8.0);
    println!(
        "closed-loop incast: {senders} AIMD senders (flow 0 non-responsive) -> \
         one {agg_rate} aggregator, 32 KiB shared buffer\n"
    );

    for (label, policy) in [
        ("fifo (no management)", PolicyKind::None),
        ("threshold (Eq. 5)", PolicyKind::Threshold),
    ] {
        let profile = LinkProfile {
            buffer_bytes: ByteSize::from_kib(32).bytes(),
            policy: PolicySpec::Kind(policy),
            ..LinkProfile::default()
        };
        let fabric = incast_closed_loop(senders, agg_rate, &profile);
        let res = fabric.run(3, Time::from_secs_f64(0.1), Time::from_secs(2), 1);
        let agg = &res[senders];
        let total: u64 = agg.flows.iter().map(|f| f.delivered_bytes).sum();

        println!("== {label} ==");
        println!(
            "{:>5} {:>14} {:>7} {:>7} {:>11} {:>11} {:>9}",
            "flow", "class", "kB out", "share%", "final cwnd", "loss events", "RTO fires"
        );
        for i in 0..senders {
            // AIMD state lives on the sender link that owns the source;
            // delivery is accounted where contention happens, at the
            // aggregator.
            let st = res[i]
                .aimd
                .as_ref()
                .and_then(|v| v.iter().find(|(f, _)| *f == 0).map(|&(_, s)| s))
                .expect("closed-loop senders publish AIMD counters");
            let delivered = agg.flows[i].delivered_bytes;
            println!(
                "{:>5} {:>14} {:>7} {:>7.1} {:>11} {:>11} {:>9}",
                i,
                if i == 0 {
                    "non-responsive"
                } else {
                    "responsive"
                },
                delivered / 1000,
                100.0 * delivered as f64 / total as f64,
                st.final_cwnd,
                st.loss_events,
                st.rto_backoffs,
            );
        }
        let drops0 = agg.flows[0].dropped_pkts;
        println!(
            "aggregator: {} kB delivered, flow 0 drops {} ({}), throughput of flow 1 = {:.2} Mb/s\n",
            total / 1000,
            drops0,
            if drops0 > 0 { "policed" } else { "unpoliced" },
            agg.flow_throughput_bps(FlowId(1)) / 1e6,
        );
    }
    println!(
        "Threshold admission turns the shared buffer into per-flow feedback:\n\
         the non-responsive flow is confined near its reservation while every\n\
         responsive AIMD flow keeps a live window — under FIFO the same flows\n\
         collapse to their minimum cwnd and starve (compare the share columns)."
    );
}
