//! Capacity planning with the §2.3 schedulability regions: admit flows
//! one at a time (as a signalling plane would), watch when the link
//! becomes bandwidth- vs buffer-limited under WFQ vs FIFO+thresholds,
//! and print the Eq.-10 buffer/utilization frontier.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use qos_buffer_mgmt::core::admission::{
    buffer_inflation, AdmissionController, AdmissionOutcome, Discipline, LinkConfig,
};
use qos_buffer_mgmt::core::flow::{FlowId, FlowSpec};
use qos_buffer_mgmt::core::units::{ByteSize, Rate};

fn request(i: u32) -> FlowSpec {
    // Identical 2 Mb/s / 50 KiB requests arriving one by one.
    FlowSpec::builder(FlowId(i))
        .token_rate(Rate::from_mbps(2.0))
        .bucket(ByteSize::from_kib(50).bytes())
        .build()
}

fn main() {
    let link = LinkConfig::new(Rate::from_mbps(48.0), ByteSize::from_mib(1).bytes());
    println!(
        "link: {} with {} of buffer; requests: 2 Mb/s, 50 KiB bucket each\n",
        link.rate,
        ByteSize::from_bytes(link.buffer_bytes)
    );

    for (name, disc) in [
        ("WFQ (Eqs. 5-6)", Discipline::Wfq),
        ("FIFO+thresholds (Eqs. 7-9)", Discipline::FifoThreshold),
    ] {
        let mut ctl = AdmissionController::new(link, disc);
        let mut i = 0;
        let reason = loop {
            match ctl.try_admit(request(i)) {
                AdmissionOutcome::Accepted => i += 1,
                AdmissionOutcome::RejectedBandwidth => break "bandwidth limited",
                AdmissionOutcome::RejectedBuffer => break "buffer limited",
            }
        };
        println!(
            "{name}: admitted {i} flows (u = {:.1}%), then {reason}; buffer slack {:.0} KiB",
            ctl.utilization() * 100.0,
            ctl.buffer_slack_bytes() / 1024.0
        );
    }

    println!("\nEq. 10 — buffer needed per byte of Σσ as reserved utilization grows:");
    println!("{:>6} {:>12} {:>8}", "u", "FIFO 1/(1-u)", "WFQ");
    for u in [0.0, 0.25, 0.5, 0.683, 0.75, 0.9, 0.95, 0.99] {
        println!("{:>6.3} {:>12.1} {:>8.1}", u, buffer_inflation(u), 1.0);
    }
    println!("\n(0.683 is Table 1's reserved utilization — FIFO needs ≈3.2× WFQ's buffer there;");
    println!(" as u → 1 the FIFO requirement diverges, the §2.3 trade-off.)");
}
