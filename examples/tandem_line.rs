//! Multi-hop composition (repo extension): Table 1 through a two-hop
//! line — a 48 Mb/s access hop followed by a 40 Mb/s bottleneck — with
//! threshold buffer management at both hops. Demonstrates that the
//! paper's per-node guarantees compose along a path: conformant flows
//! stay lossless end-to-end while the bottleneck sheds only aggressive
//! excess.
//!
//! ```text
//! cargo run --release --example tandem_line
//! ```

use qos_buffer_mgmt::core::admission::fifo_required_buffer;
use qos_buffer_mgmt::core::flow::Conformance;
use qos_buffer_mgmt::core::policy::PolicyKind;
use qos_buffer_mgmt::core::units::{ByteSize, Rate, Time};
use qos_buffer_mgmt::sched::SchedKind;
use qos_buffer_mgmt::sim::tandem::{run_line, Hop};
use qos_buffer_mgmt::sim::PolicySpec;
use qos_buffer_mgmt::traffic::table1;

fn main() {
    let specs = table1();
    let fast = Rate::from_mbps(48.0);
    let slow = Rate::from_mbps(40.0);
    // Each hop gets the Eq.-9 lossless buffer for ITS link rate —
    // the bottleneck needs more despite being slower (utilization is
    // higher there: 32.8/40 vs 32.8/48).
    let b1 = fifo_required_buffer(fast, &specs).ceil() as u64;
    let b2 = fifo_required_buffer(slow, &specs).ceil() as u64;
    println!(
        "hop 1: {fast}, Eq.9 buffer {}\nhop 2: {slow}, Eq.9 buffer {}\n",
        ByteSize::from_bytes(b1),
        ByteSize::from_bytes(b2)
    );

    let hop = |rate, buffer| Hop {
        link_rate: rate,
        buffer_bytes: buffer,
        sched: SchedKind::Fifo,
        policy: PolicySpec::Kind(PolicyKind::Threshold),
    };
    let res = run_line(
        &[hop(fast, b1), hop(slow, b2)],
        &specs,
        1,
        Time::from_secs(2),
        Time::from_secs(22),
    );

    println!(
        "{:>5} {:>10} {:>9} {:>9} {:>9} {:>9} {:>12}",
        "flow", "reserved", "h1 Mb/s", "h1loss%", "h2 Mb/s", "h2loss%", "class"
    );
    for s in &specs {
        println!(
            "{:>5} {:>10} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>12}",
            s.id.0,
            format!("{}", s.token_rate),
            res[0].flow_throughput_bps(s.id) / 1e6,
            res[0].flows[s.id.index()].loss_ratio() * 100.0,
            res[1].flow_throughput_bps(s.id) / 1e6,
            res[1].flows[s.id.index()].loss_ratio() * 100.0,
            match s.class {
                Conformance::Conformant => "conformant",
                Conformance::ModeratelyNonConformant => "moderate",
                Conformance::Aggressive => "aggressive",
            },
        );
    }
    let conf_loss: f64 = res
        .iter()
        .map(|r| r.class_loss_ratio(&specs, Conformance::Conformant))
        .sum();
    println!(
        "\ntotal conformant loss across both hops: {:.4}% — per-node Eq.9 \
         admission composes into an end-to-end guarantee",
        conf_loss * 100.0
    );
}
