//! Hybrid-architecture planner (§4): given a flow mix and a number of
//! queues, compute the Proposition-3 rate split, per-queue buffers
//! (Eq. 18), total requirement (Eq. 19), and the buffer saved versus a
//! single FIFO queue (Eq. 17) — for the paper's hand grouping and for
//! the DP-optimized grouping.
//!
//! ```text
//! cargo run --release --example hybrid_planner [k]
//! ```

use qos_buffer_mgmt::core::analysis::hybrid::{
    buffer_savings_eq17, hybrid_buffer_eq19, optimal_alphas, rate_assignment_eq16,
    single_fifo_buffer_eq13, Grouping,
};
use qos_buffer_mgmt::core::units::ByteSize;
use qos_buffer_mgmt::sim::scenarios::{case2_grouping, plan_hybrid, LINK_RATE};
use qos_buffer_mgmt::traffic::table2;

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let specs = table2();
    let r = LINK_RATE.bps() as f64;
    let sigma: f64 = specs.iter().map(|s| s.bucket_bytes as f64).sum();
    let rho: f64 = specs.iter().map(|s| s.token_rate.bps() as f64).sum();

    println!(
        "Table 2: 30 flows, Σσ = {:.0} KiB, Σρ = {:.1} Mb/s on a 48 Mb/s link",
        sigma / 1024.0,
        rho / 1e6
    );
    println!(
        "single FIFO queue needs B = Rσ/(R−ρ) = {:.0} KiB (Eq. 13)\n",
        single_fifo_buffer_eq13(r, sigma, rho) / 1024.0
    );

    for (name, grouping) in [
        ("paper grouping {0-9}{10-19}{20-29}", case2_grouping()),
        (
            "DP-optimized grouping (σ/ρ-sorted)",
            Grouping::optimize_contiguous(&specs, k),
        ),
    ] {
        if grouping.k != k && name.starts_with("paper") && k != 3 {
            continue; // the paper grouping is only defined for k = 3
        }
        let groups = grouping.profiles(&specs);
        let alphas = optimal_alphas(&groups);
        let rates = rate_assignment_eq16(r, &groups, &alphas);
        println!("== {name} (k = {}) ==", grouping.k);
        println!(
            "{:>6} {:>7} {:>8} {:>11} {:>11} {:>12}",
            "queue", "flows", "alpha", "rho^ Mb/s", "R_i Mb/s", "B_i KiB(18)"
        );
        let s_total: f64 = groups.iter().map(|g| g.s_term()).sum();
        for (q, g) in groups.iter().enumerate() {
            let b18 = g.sigma_bytes + s_total * g.s_term() / (r - rho);
            println!(
                "{:>6} {:>7} {:>8.4} {:>11.2} {:>11.2} {:>12.1}",
                q,
                g.n_flows,
                alphas[q],
                g.rho_bps / 1e6,
                rates[q] / 1e6,
                b18 / 1024.0
            );
        }
        let b_hyb = hybrid_buffer_eq19(r, &groups);
        let saved = buffer_savings_eq17(r, &groups);
        println!(
            "total B_hybrid = {:.0} KiB (Eq. 19); saved vs single FIFO: {:.0} KiB (Eq. 17)\n",
            b_hyb / 1024.0,
            saved / 1024.0
        );
    }

    // How many queues does a given buffer budget require?
    println!("queues needed vs buffer budget (Eq. 11 with optimal rates, DP grouping):");
    for frac in [1.0, 0.95, 0.9, 0.88] {
        let budget = single_fifo_buffer_eq13(r, sigma, rho) * frac;
        match qos_buffer_mgmt::core::analysis::hybrid::min_queues_for_budget(&specs, r, budget) {
            Some(k) => println!("  budget {:>7.0} KiB -> k = {k}", budget / 1024.0),
            None => println!(
                "  budget {:>7.0} KiB -> infeasible (below Σσ)",
                budget / 1024.0
            ),
        }
    }
    println!();

    // And the concrete runtime plan used by the simulator for a 2 MiB buffer.
    let plan = plan_hybrid(&specs, &case2_grouping(), ByteSize::from_mib(2).bytes());
    println!("runtime plan for B = 2 MiB (paper grouping):");
    println!(
        "  queue rates (Mb/s): {:?}",
        plan.queue_rates_bps
            .iter()
            .map(|r| (*r as f64 / 1e6 * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "  queue buffers (KiB): {:?}",
        plan.queue_buffers
            .iter()
            .map(|b| b / 1024)
            .collect::<Vec<_>>()
    );
    println!(
        "  flow thresholds (KiB, first 10): {:?}",
        plan.flow_thresholds[..10]
            .iter()
            .map(|t| t / 1024)
            .collect::<Vec<_>>()
    );
}
