//! Quickstart: run the paper's Table 1 workload through a FIFO link
//! protected by threshold buffer management, and print per-flow
//! statistics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use qos_buffer_mgmt::core::flow::Conformance;
use qos_buffer_mgmt::core::policy::PolicyKind;
use qos_buffer_mgmt::core::units::{ByteSize, Dur, Rate};
use qos_buffer_mgmt::sim::scenarios::LINK_RATE;
use qos_buffer_mgmt::sim::{ExperimentConfig, PolicySpec};
use qos_buffer_mgmt::traffic::table1;

fn main() {
    // The paper's setup: 48 Mb/s link, Table 1 flows, 1 MiB of buffer.
    let specs = table1();
    let cfg = ExperimentConfig {
        link_rate: LINK_RATE,
        buffer_bytes: ByteSize::from_mib(1).bytes(),
        specs: specs.clone(),
        sched: qos_buffer_mgmt::sched::SchedKind::Fifo,
        policy: PolicySpec::Kind(PolicyKind::Threshold),
        warmup: Dur::from_secs(2),
        duration: Dur::from_secs(12),
        sojourns: Default::default(),
        stats: Default::default(),
        sources: Default::default(),
    };

    println!(
        "simulating {} flows for {} (warmup {}) ...",
        cfg.specs.len(),
        cfg.duration,
        cfg.warmup
    );
    let res = cfg.run_once(1);

    println!(
        "\n{:>5} {:>12} {:>12} {:>10} {:>10} {:>10} {:>12}",
        "flow", "reserved", "delivered", "loss %", "meandelay", "maxdelay", "class"
    );
    for s in &specs {
        let f = &res.flows[s.id.index()];
        println!(
            "{:>5} {:>12} {:>12} {:>10.2} {:>10} {:>10} {:>12}",
            s.id.0,
            format!("{}", s.token_rate),
            format!("{:.2}Mb/s", res.flow_throughput_bps(s.id) / 1e6),
            f.loss_ratio() * 100.0,
            format!("{}", f.mean_delay()),
            format!("{}", Dur(f.delay_max_ns)),
            match s.class {
                Conformance::Conformant => "conformant",
                Conformance::ModeratelyNonConformant => "moderate",
                Conformance::Aggressive => "aggressive",
            }
        );
    }
    println!(
        "\naggregate throughput: {:.2} Mb/s ({:.1}% of the {} link)",
        res.aggregate_throughput_bps() / 1e6,
        res.aggregate_throughput_bps() / LINK_RATE.bps() as f64 * 100.0,
        Rate::from_bps(LINK_RATE.bps()),
    );
    println!(
        "conformant loss: {:.3}%  — the paper's guarantee: 0 with enough buffer",
        res.class_loss_ratio(&specs, Conformance::Conformant) * 100.0
    );
}
