//! Aggregation-tree fabric (repo extension): an ISP-style download
//! path — one site link fanning out to access points, each fanning out
//! to subscribers — with threshold buffer management at every link.
//! Demonstrates the multi-link fabric: per-link guarantees hold at
//! each level of the tree, and the run is byte-identical for any
//! shard-thread count.
//!
//! ```text
//! cargo run --release --example topology_tree
//! ```

use qos_buffer_mgmt::core::units::{Rate, Time};
use qos_buffer_mgmt::sim::scenarios::{aggregation_tree, LinkProfile, LINK_RATE};
use qos_buffer_mgmt::traffic::table1;

fn main() {
    // Each subscriber downloads the first three Table 1 flows
    // (6.8 Mb/s reserved): 2 APs × 3 subscribers = 6 subscribers,
    // 18 flows at the site link.
    let specs = &table1()[..3];
    let (aps, subs) = (2usize, 3usize);
    let rates = [LINK_RATE, Rate::from_mbps(28.0), Rate::from_mbps(12.0)];
    let profile = LinkProfile::default();
    println!(
        "tree: site {} -> {aps} APs at {} -> {} subscribers at {}\n",
        rates[0],
        rates[1],
        aps * subs,
        rates[2]
    );

    let threads = 4;
    let res = aggregation_tree(aps, subs, specs, rates, &profile, 42).run(
        42,
        Time::from_secs(2),
        Time::from_secs(12),
        threads,
    );

    let thr = |i: usize| -> f64 {
        (0..res[i].flows.len())
            .map(|f| res[i].flow_throughput_bps(qos_buffer_mgmt::core::flow::FlowId(f as u32)))
            .sum::<f64>()
            / 1e6
    };
    let loss = |i: usize| -> f64 {
        let offered: u64 = res[i].flows.iter().map(|f| f.offered_pkts).sum();
        let dropped: u64 = res[i].flows.iter().map(|f| f.dropped_pkts).sum();
        100.0 * dropped as f64 / offered.max(1) as f64
    };
    println!(
        "{:>12} {:>7} {:>10} {:>8}",
        "link", "flows", "Mb/s", "loss%"
    );
    println!(
        "{:>12} {:>7} {:>10.2} {:>8.3}",
        "site",
        res[0].flows.len(),
        thr(0),
        loss(0)
    );
    for a in 0..aps {
        let i = 1 + a;
        println!(
            "{:>12} {:>7} {:>10.2} {:>8.3}",
            format!("ap{a}"),
            res[i].flows.len(),
            thr(i),
            loss(i)
        );
    }
    for d in 0..aps * subs {
        let i = 1 + aps + d;
        println!(
            "{:>12} {:>7} {:>10.2} {:>8.3}",
            format!("sub{d}"),
            res[i].flows.len(),
            thr(i),
            loss(i)
        );
    }
    println!(
        "\n({} links advanced on {threads} shard threads)",
        res.len()
    );
}
