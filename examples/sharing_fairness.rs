//! Buffer sharing and excess-bandwidth fairness (§3.3): compare how
//! FIFO with fixed thresholds, FIFO with holes/headroom sharing, and
//! per-flow WFQ split the *excess* bandwidth among the non-conformant
//! Table-1 flows (flows 6 and 8 differ 5× in reserved rate).
//!
//! ```text
//! cargo run --release --example sharing_fairness
//! ```

use qos_buffer_mgmt::core::flow::{Conformance, FlowId};
use qos_buffer_mgmt::core::policy::PolicyKind;
use qos_buffer_mgmt::core::units::{ByteSize, Dur};
use qos_buffer_mgmt::sched::SchedKind;
use qos_buffer_mgmt::sim::scenarios::LINK_RATE;
use qos_buffer_mgmt::sim::{ExperimentConfig, PolicySpec};
use qos_buffer_mgmt::traffic::table1;

fn main() {
    let specs = table1();
    let b = ByteSize::from_mib(4).bytes();
    let h = ByteSize::from_mib(2).bytes();
    let schemes: Vec<(&str, SchedKind, PolicySpec)> = vec![
        (
            "fifo+thresh ",
            SchedKind::Fifo,
            PolicySpec::Kind(PolicyKind::Threshold),
        ),
        (
            "fifo+sharing",
            SchedKind::Fifo,
            PolicySpec::Kind(PolicyKind::Sharing { headroom_bytes: h }),
        ),
        (
            "wfq+sharing ",
            SchedKind::Wfq,
            PolicySpec::Kind(PolicyKind::Sharing { headroom_bytes: h }),
        ),
    ];

    println!("Table 1 on a 48 Mb/s link, B = 4 MiB, H = 2 MiB, 5 seeds\n");
    println!(
        "{:<13} {:>8} {:>9} {:>9} {:>14} {:>10}",
        "scheme", "util %", "f6 Mb/s", "f8 Mb/s", "excess ratio*", "conf loss%"
    );
    for (label, sched, policy) in schemes {
        let cfg = ExperimentConfig {
            link_rate: LINK_RATE,
            buffer_bytes: b,
            specs: specs.clone(),
            sched,
            policy,
            warmup: Dur::from_secs(2),
            duration: Dur::from_secs(22),
            sojourns: Default::default(),
            stats: Default::default(),
            sources: Default::default(),
        };
        let mr = cfg.run_many(1, 5);
        let util = mr.summarize(|r| r.aggregate_throughput_bps() / 48e6 * 100.0);
        let f6 = mr.summarize(|r| r.flow_throughput_bps(FlowId(6)) / 1e6);
        let f8 = mr.summarize(|r| r.flow_throughput_bps(FlowId(8)) / 1e6);
        let loss = mr.summarize(|r| r.class_loss_ratio(&specs, Conformance::Conformant) * 100.0);
        // Excess over the reserved floor (0.4 and 2.0 Mb/s): WFQ's
        // proportional split predicts a ratio of 2.0/0.4 = 5.
        let ratio = (f8.mean - 2.0) / (f6.mean - 0.4).max(1e-9);
        println!(
            "{:<13} {:>8.2} {:>9.2} {:>9.2} {:>14.2} {:>10.3}",
            label, util.mean, f6.mean, f8.mean, ratio, loss.mean
        );
    }
    println!("\n* excess ratio = (f8 − 2.0)/(f6 − 0.4); reserved-rate-proportional split = 5.0");
    println!(
        "The paper's claim: FIFO+sharing mimics WFQ's split, which fixed partitioning does not."
    );
}
