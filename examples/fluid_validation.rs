//! Fluid-model validation walkthrough: re-run the §2 proofs numerically
//! and watch the bounds hold (and break, when under-provisioned).
//!
//! ```text
//! cargo run --release --example fluid_validation
//! ```

use qos_buffer_mgmt::core::analysis::fifo_bounds::m_hat;
use qos_buffer_mgmt::fluid::{
    FluidFifo, FluidFlow, FluidGps, GreedyFluid, SawtoothBurstFluid, SteadyFluid,
};

const R: f64 = 48e6;
const B: f64 = 1_048_576.0;
const DT: f64 = 1e-5;

fn main() {
    prop1();
    prop2(true);
    prop2(false);
    gps_reference();
}

/// Proposition 1: CBR flow vs greedy flow under B·ρ/R thresholds.
fn prop1() {
    let rho1 = 12e6;
    let b1 = B * rho1 / R;
    let mut mux = FluidFifo::new(R, B, vec![b1, B - b1]);
    let mut flows: Vec<Box<dyn FluidFlow>> =
        vec![Box::new(SteadyFluid::from_bps(rho1)), Box::new(GreedyFluid)];
    let steps = 600_000;
    let served = qos_buffer_mgmt::fluid::driver::run(&mut mux, &mut flows, DT, steps);
    let tail_rate = served[steps - 100_000..].iter().map(|s| s[0]).sum::<f64>() * 8.0;
    println!("== Proposition 1 (ρ1 = 12 Mb/s vs greedy, B = 1 MiB) ==");
    println!(
        "  flow 1 drops: {:.1} B of {:.1} MB offered ({:.4}%)",
        mux.dropped(0),
        mux.arrived(0) / 1e6,
        mux.dropped(0) / mux.arrived(0) * 100.0
    );
    println!(
        "  tail service rate: {:.3} Mb/s (guarantee 12.000; Example-1 convergence)\n",
        tail_rate / 1e6
    );
}

/// Proposition 2 with (sufficient = true) the σ + B·ρ/R threshold, or
/// (false) the under-provisioned B·ρ/R threshold — the necessity note.
fn prop2(sufficient: bool) {
    let rho1 = 24e6;
    let sigma1 = 51_200.0;
    let b1 = if sufficient {
        sigma1 + B * rho1 / R
    } else {
        B * rho1 / R
    };
    let b2 = B - b1;
    let fill_limit = rho1 * b2 / (R - rho1);
    let mut adv = SawtoothBurstFluid::new(sigma1, rho1, 0.97 * fill_limit);
    let mut mux = FluidFifo::new(R, B, vec![b1, b2]);
    let mut greedy = GreedyFluid;
    let m_cap = m_hat(b2, R, rho1);
    let mut m_max: f64 = 0.0;
    for _ in 0..600_000 {
        let o0 = adv.offered(DT, &mux, 0);
        let o1 = greedy.offered(DT, &mux, 1);
        mux.step(DT, &[o0, o1]);
        m_max = m_max.max(mux.occupancy(0) + adv.tokens() - sigma1);
    }
    println!(
        "== Proposition 2 ({}) ==",
        if sufficient {
            "threshold σ + B·ρ/R — sufficiency"
        } else {
            "threshold B·ρ/R only — the necessity counterexample"
        }
    );
    println!(
        "  adversary fired its σ burst: {} | flow 1 dropped {:.0} B",
        adv.fired(),
        mux.dropped(0)
    );
    println!(
        "  max M(t) = {:.0} vs M̂ = {:.0} ({})\n",
        m_max,
        m_cap,
        if m_max < m_cap * 1.005 {
            "invariant holds"
        } else {
            "exceeded"
        }
    );
}

/// The GPS ideal: weighted sharing the WFQ scheduler approximates.
fn gps_reference() {
    let mut g = FluidGps::new(R, vec![2.0, 1.0]);
    g.step(0.0, &[10e6, 10e6]);
    let served = g.step(1.0, &[0.0, 0.0]);
    println!("== GPS reference (weights 2:1, both backlogged, 1 s) ==");
    println!(
        "  served {:.2} / {:.2} MB — ratio {:.3} (ideal 2.0)",
        served[0] / 1e6,
        served[1] / 1e6,
        served[0] / served[1]
    );
}
