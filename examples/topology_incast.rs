//! Incast fan-in fabric (repo extension): the datacenter
//! partition/aggregate shape — several sender links draining into one
//! aggregator whose shared buffer takes the brunt. Demonstrates buffer
//! management at the fan-in point: threshold admission keeps each
//! sender's conformant flows protected while the aggregator sheds
//! aggressive excess.
//!
//! ```text
//! cargo run --release --example topology_incast
//! ```

use qos_buffer_mgmt::core::flow::Conformance;
use qos_buffer_mgmt::core::units::{Rate, Time};
use qos_buffer_mgmt::sim::scenarios::{incast_fanin, LinkProfile, LINK_RATE};
use qos_buffer_mgmt::traffic::table1;

fn main() {
    // Four senders, each originating Table 1 flows 0, 3 and 6 (one
    // from each conformance class), all converging on one 44 Mb/s
    // aggregator — oversubscribed at the fan-in, as incast always is.
    let t1 = table1();
    let specs = [t1[0], t1[3], t1[6]];
    let senders = 4usize;
    let agg_rate = Rate::from_mbps(44.0);
    println!(
        "incast: {senders} senders at {} -> 1 aggregator at {agg_rate}\n",
        LINK_RATE
    );

    let fabric = incast_fanin(
        senders,
        &specs,
        LINK_RATE,
        agg_rate,
        &LinkProfile::default(),
        7,
    );
    let res = fabric.run(7, Time::from_secs(2), Time::from_secs(12), 2);
    let agg = &res[senders];

    println!(
        "{:>7} {:>6} {:>12} {:>10} {:>8}",
        "sender", "flow", "class", "agg Mb/s", "loss%"
    );
    for i in 0..senders {
        for (k, spec) in specs.iter().enumerate() {
            let f = &agg.flows[i * specs.len() + k];
            let id = qos_buffer_mgmt::core::flow::FlowId((i * specs.len() + k) as u32);
            println!(
                "{:>7} {:>6} {:>12} {:>10.2} {:>8.2}",
                i,
                k,
                format!("{:?}", spec.class),
                agg.flow_throughput_bps(id) / 1e6,
                f.loss_ratio() * 100.0
            );
        }
    }
    let conformant_drops: u64 = (0..senders)
        .flat_map(|i| specs.iter().enumerate().map(move |(k, s)| (i, k, s)))
        .filter(|(_, _, s)| s.class == Conformance::Conformant)
        .map(|(i, k, _)| agg.flows[i * specs.len() + k].dropped_pkts)
        .sum();
    println!("\nconformant drops at the aggregator: {conformant_drops}");
}
