//! Flow isolation (the paper's Example 1 at packet level): a conformant
//! CBR flow against a greedy blast, first on a plain FIFO (no buffer
//! management — the conformant flow starves), then with Proposition-1
//! thresholds (the guarantee holds). Also prints the analytic Example 1
//! interval dynamics for comparison.
//!
//! ```text
//! cargo run --release --example isolation
//! ```

use qos_buffer_mgmt::core::analysis::example1::Example1;
use qos_buffer_mgmt::core::flow::{Conformance, FlowId, FlowSpec};
use qos_buffer_mgmt::core::policy::{PolicyKind, SharedBuffer};
use qos_buffer_mgmt::core::units::{ByteSize, Rate, Time};
use qos_buffer_mgmt::sched::Fifo;
use qos_buffer_mgmt::sim::Router;
use qos_buffer_mgmt::traffic::{CbrSource, Source};

const LINK: Rate = Rate::from_bps(48_000_000);

fn build_router(policy_kind: Option<PolicyKind>) -> Router {
    let b = ByteSize::from_mib(1).bytes();
    let specs = vec![
        FlowSpec::builder(FlowId(0))
            .token_rate(Rate::from_mbps(12.0))
            .bucket(500) // one packet of burst: effectively pure CBR
            .class(Conformance::Conformant)
            .build(),
        FlowSpec::builder(FlowId(1))
            .token_rate(Rate::from_mbps(1.0))
            .bucket(500)
            .class(Conformance::Aggressive)
            .build(),
    ];
    let policy = match policy_kind {
        Some(k) => k.build(b, LINK, &specs),
        None => Box::new(SharedBuffer::new(b, 2)),
    };
    let sources: Vec<Box<dyn Source>> = vec![
        Box::new(CbrSource::new(Rate::from_mbps(12.0), 500, Time::ZERO)),
        // The "greedy" flow: twice the link rate, never backs off.
        Box::new(CbrSource::greedy(LINK, 500, 2)),
    ];
    Router::new(LINK, policy, Box::new(Fifo::new()), sources)
}

fn main() {
    println!("== analytic Example 1 (B = 1 MiB, R = 48 Mb/s, rho1 = 12 Mb/s) ==");
    let sys = Example1::from_buffer(1_048_576.0, 48e6, 12e6);
    println!(
        "{:>4} {:>10} {:>12} {:>12} {:>12}",
        "i", "l_i (ms)", "R1_i (Mb/s)", "R2_i (Mb/s)", "Q1 (KiB)"
    );
    for iv in sys.intervals().take(8) {
        println!(
            "{:>4} {:>10.3} {:>12.3} {:>12.3} {:>12.1}",
            iv.i,
            iv.len * 1e3,
            iv.rate1 / 1e6,
            iv.rate2 / 1e6,
            iv.q1_end_bytes / 1024.0
        );
    }
    println!(
        "limits: l = {:.3} ms, R1 -> 12, R2 -> 36 (the guarantee holds asymptotically)\n",
        sys.l_limit() * 1e3
    );

    let window = (Time::from_secs(1), Time::from_secs(11));

    println!("== packet-level, plain FIFO (no buffer management) ==");
    let res = build_router(None).run(window.0, window.1, 0);
    report(&res);
    println!("   -> sharing the buffer lets the greedy flow inflict loss on the conformant one\n");

    println!("== packet-level, FIFO + Proposition-1 thresholds ==");
    let res = build_router(Some(PolicyKind::Threshold)).run(window.0, window.1, 0);
    report(&res);
    println!("   -> the conformant flow receives its reserved 12 Mb/s, losslessly");
}

fn report(res: &qos_buffer_mgmt::sim::SimResult) {
    for (i, f) in res.flows.iter().enumerate() {
        println!(
            "  flow{}: delivered {:>6.2} Mb/s, loss {:>6.2}%",
            i,
            res.flow_throughput_bps(FlowId(i as u32)) / 1e6,
            f.loss_ratio() * 100.0
        );
    }
}
